//! Shard-pinned workers: each worker permanently owns a set of stateful
//! cells and serves typed requests against them.
//!
//! # Model
//!
//! A [`PinnedPool`] wraps `n` cells, each holding one value of a
//! [`Pinned`] implementation (for the sharded engine: one `ShardSegment`
//! plus its mutable serving state). Requests are typed
//! (`P::Request -> P::Response`) and travel through per-cell queues, so a
//! distributed CELF round costs one message round-trip per shard instead
//! of one OS thread spawn per shard — the regression `BENCH_5.json`
//! measured.
//!
//! Ownership is an *affinity*, not an exclusivity: every cell is guarded
//! by a mutex, and the thread issuing a [`PinnedPool::scatter`] helps
//! drain the queues it just filled. Whoever holds the cell lock serves;
//! with zero workers the caller serves every request inline and the
//! scatter degenerates to a plain loop over shards — no allocation beyond
//! the response vector, no parking, no atomics on the hot path. That is
//! the configuration [`WakeMode::Auto`] picks on a single-CPU host, where
//! handing work to another thread can only add latency.
//!
//! # Shutdown and panics
//!
//! Dropping the pool flags shutdown, unparks and joins every worker; the
//! cells (and their pinned state) drop with it. A panicking `serve` is
//! caught by whichever thread ran it, recorded on the in-flight gather,
//! and re-thrown on the scattering thread once the round drains — workers
//! and cell locks are never poisoned.
//!
//! # Supervision
//!
//! A worker *thread* dying (a bug in the loop itself, or an injected
//! `imm-fault` panic) is survivable too: every queued envelope carries a
//! drop guard that marks its gather slot lost instead of leaving the
//! scattering thread parked forever, [`PinnedPool::try_scatter`] turns
//! lost slots into a structured [`ScatterError`], and the next scatter
//! respawns the dead worker over the same cell affinity (counted by
//! `exec_worker_restarts`). Requests degrade to errors; the pool and its
//! pinned state never poison.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle, Thread};

use crate::metrics::{self, Counter};

/// State a pinned worker owns and serves requests against.
///
/// `serve` takes `&mut self`: the runtime guarantees exclusive access per
/// request (cell mutex), so implementations keep scratch buffers and
/// mutable masks without interior mutability.
pub trait Pinned: Send + 'static {
    /// Request message type.
    type Request: Send;
    /// Response message type.
    type Response: Send;
    /// Handle one request. May panic; the panic is re-thrown on the
    /// scattering thread without poisoning the pool.
    fn serve(&mut self, request: Self::Request) -> Self::Response;
}

/// When to hand requests to dedicated worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeMode {
    /// Workers only when the host has real parallelism
    /// (`available_parallelism() > 1`); otherwise serve inline.
    Auto,
    /// Always route through workers when `threads > 1` (tests, and hosts
    /// where the caller should stay responsive).
    Always,
    /// Never spawn workers; the calling thread serves everything inline.
    Never,
}

/// NUMA placement directives for a pinned pool, assembled by the caller.
///
/// Exec deliberately knows nothing about machine topology (the vendored
/// `rayon` shim delegates onto this crate, so a dependency on the
/// topology layer would be circular). The caller — the sharded engine —
/// detects the topology, decides which node each worker and cell belongs
/// to, and hands this plain-data record down. The pool then:
///
/// * runs `on_worker_start(w)` on each worker thread as it starts
///   (including supervised respawns) — the hook is where the caller pins
///   the thread to its placed core;
/// * after each served request, increments `local` when the serving
///   worker's node matches the cell's node and `remote` otherwise. The
///   scattering thread's inline and help-drain serves always count as
///   `remote`: they run wherever the caller happens to be scheduled.
pub struct PoolPlacement {
    /// NUMA node of each worker thread, indexed by worker slot.
    pub worker_node: Vec<usize>,
    /// NUMA node each cell's data is placed on, indexed by cell.
    pub cell_node: Vec<usize>,
    /// Incremented when a cell is served by a worker on its own node.
    pub local: &'static Counter,
    /// Incremented when a cell is served cross-node (or inline).
    pub remote: &'static Counter,
    /// Runs on each worker thread before its serve loop (pinning hook).
    pub on_worker_start: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl PoolPlacement {
    /// Whether worker `w` serving cell `ci` is a node-local access.
    fn is_local(&self, worker: usize, cell: usize) -> bool {
        match (self.worker_node.get(worker), self.cell_node.get(cell)) {
            (Some(w), Some(c)) => w == c,
            _ => false,
        }
    }

    /// Count one serve of `cell` by worker `worker`.
    fn count_worker_serve(&self, worker: usize, cell: usize) {
        if self.is_local(worker, cell) {
            self.local.increment();
        } else {
            self.remote.increment();
        }
    }
}

impl fmt::Debug for PoolPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolPlacement")
            .field("worker_node", &self.worker_node)
            .field("cell_node", &self.cell_node)
            .field("on_worker_start", &self.on_worker_start.is_some())
            .finish()
    }
}

/// A scatter that could not complete because worker threads died while
/// holding its envelopes. The affected response slots are gone; the
/// pool itself stays healthy and respawns the workers on the next
/// scatter, so retrying the request is safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterError {
    /// How many of the scattered requests were lost.
    pub lost: usize,
}

impl fmt::Display for ScatterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scattered request(s) lost to a dead pinned worker (the pool \
             respawns dead workers on the next scatter; retry is safe)",
            self.lost
        )
    }
}

impl std::error::Error for ScatterError {}

/// One in-flight scatter: completion count, response slots, owner wakeup.
struct GatherShared<R> {
    pending: AtomicUsize,
    lost: AtomicUsize,
    owner: Thread,
    owner_parked: AtomicBool,
    slots: Box<[UnsafeCell<Option<R>>]>,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

// Each slot is written by exactly one serving thread (the envelope that
// names it) and read by the owner only after `pending` hits zero.
unsafe impl<R: Send> Send for GatherShared<R> {}
unsafe impl<R: Send> Sync for GatherShared<R> {}

impl<R> GatherShared<R> {
    fn new(owner: Thread, len: usize) -> Self {
        GatherShared {
            pending: AtomicUsize::new(len),
            lost: AtomicUsize::new(0),
            owner,
            owner_parked: AtomicBool::new(false),
            slots: (0..len).map(|_| UnsafeCell::new(None)).collect(),
            panic: Mutex::new(None),
        }
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1
            && self.owner_parked.load(Ordering::SeqCst)
        {
            self.owner.unpark();
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// One queued request: payload, its response slot, its gather.
///
/// The `Drop` impl is the crash-safety half of the gather protocol: if
/// an envelope is destroyed without being served (the thread that
/// popped it died mid-flight), it still completes its gather — as a
/// *lost* slot — so the scattering thread unblocks with a structured
/// error instead of parking forever on a count that can no longer
/// reach zero.
struct Envelope<P: Pinned> {
    request: Option<P::Request>,
    slot: usize,
    gather: Arc<GatherShared<P::Response>>,
    done: bool,
}

impl<P: Pinned> Drop for Envelope<P> {
    fn drop(&mut self) {
        if !self.done {
            self.gather.lost.fetch_add(1, Ordering::SeqCst);
            self.gather.complete_one();
        }
    }
}

struct CellInner<P: Pinned> {
    pinned: P,
    queue: VecDeque<Envelope<P>>,
}

struct Cell<P: Pinned> {
    inner: Mutex<CellInner<P>>,
}

impl<P: Pinned> Cell<P> {
    /// Lock the cell, recovering from (never-expected) poisoning: `serve`
    /// panics are caught before they can unwind through the guard.
    fn lock(&self) -> MutexGuard<'_, CellInner<P>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Serve one envelope against the locked cell state.
fn serve_one<P: Pinned>(inner: &mut CellInner<P>, mut envelope: Envelope<P>, served_by: &Counter) {
    let request = envelope.request.take().expect("an envelope is served at most once");
    served_by.increment();
    match panic::catch_unwind(AssertUnwindSafe(|| inner.pinned.serve(request))) {
        Ok(response) => unsafe { *envelope.gather.slots[envelope.slot].get() = Some(response) },
        Err(payload) => envelope.gather.store_panic(payload),
    }
    envelope.done = true;
    envelope.gather.complete_one();
}

struct PinnedWorker {
    parked: Arc<AtomicBool>,
    thread: Thread,
    join: Option<JoinHandle<()>>,
}

/// Dead-worker ledger shared between worker threads and the pool.
struct Deaths {
    count: AtomicUsize,
    indices: Mutex<Vec<usize>>,
}

impl Deaths {
    fn new() -> Self {
        Deaths { count: AtomicUsize::new(0), indices: Mutex::new(Vec::new()) }
    }

    fn record(&self, worker: usize) {
        self.indices.lock().unwrap_or_else(PoisonError::into_inner).push(worker);
        // Publish after the index so a reader seeing the count finds it.
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    fn take(&self) -> Vec<usize> {
        let mut indices = self.indices.lock().unwrap_or_else(PoisonError::into_inner);
        let dead = std::mem::take(&mut *indices);
        self.count.fetch_sub(dead.len(), Ordering::SeqCst);
        dead
    }
}

/// Runs on the worker's own thread: if the loop unwinds (only possible
/// through an injected fault or a bug in the loop itself — `serve`
/// panics are caught), report the death so the pool can respawn. A
/// normal shutdown return does not report.
struct DeathSentinel {
    worker: usize,
    deaths: Arc<Deaths>,
}

impl Drop for DeathSentinel {
    fn drop(&mut self) {
        if thread::panicking() {
            self.deaths.record(self.worker);
        }
    }
}

fn pinned_worker_loop<P: Pinned>(
    cells: Arc<[Cell<P>]>,
    worker: usize,
    stride: usize,
    parked: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    placement: Option<Arc<PoolPlacement>>,
) {
    let owned = || (worker..cells.len()).step_by(stride);
    loop {
        let mut progressed = false;
        for ci in owned() {
            let mut inner = cells[ci].lock();
            while let Some(envelope) = inner.queue.pop_front() {
                // Outside the request-level catch_unwind on purpose: an
                // injected panic here kills the whole worker thread (with
                // the envelope in hand), which is exactly the failure the
                // supervision path exists to absorb.
                imm_fault::worker_panic_point("exec.pinned.worker");
                serve_one(&mut inner, envelope, &metrics::PINNED_SERVED_WORKER);
                if let Some(p) = &placement {
                    p.count_worker_serve(worker, ci);
                }
                progressed = true;
            }
        }
        if progressed {
            continue;
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let queued = owned().any(|ci| !cells[ci].lock().queue.is_empty());
        if queued || shutdown.load(Ordering::SeqCst) {
            parked.store(false, Ordering::SeqCst);
            continue;
        }
        metrics::PINNED_PARKS.increment();
        thread::park();
        parked.store(false, Ordering::SeqCst);
    }
}

/// A pool of stateful cells with optional dedicated worker threads; see
/// the [module docs](self) for the execution model.
pub struct PinnedPool<P: Pinned> {
    cells: Arc<[Cell<P>]>,
    // Guarded so supervision can swap dead workers for fresh ones; the
    // lock is uncontended on the serving path (scatters already allocate
    // a batch vector, one clean mutex is noise next to that).
    workers: Mutex<Vec<PinnedWorker>>,
    worker_slots: usize,
    shutdown: Arc<AtomicBool>,
    deaths: Arc<Deaths>,
    restarts: AtomicU64,
    mode: WakeMode,
    placement: Option<Arc<PoolPlacement>>,
}

fn spawn_pinned_worker<P: Pinned>(
    w: usize,
    stride: usize,
    cells: &Arc<[Cell<P>]>,
    shutdown: &Arc<AtomicBool>,
    deaths: &Arc<Deaths>,
    placement: Option<&Arc<PoolPlacement>>,
) -> PinnedWorker {
    let parked = Arc::new(AtomicBool::new(false));
    let handle = thread::Builder::new()
        .name(format!("imm-pin-{w}"))
        .spawn({
            let cells = Arc::clone(cells);
            let parked = Arc::clone(&parked);
            let shutdown = Arc::clone(shutdown);
            let deaths = Arc::clone(deaths);
            let placement = placement.map(Arc::clone);
            move || {
                let _sentinel = DeathSentinel { worker: w, deaths };
                if let Some(hook) = placement.as_ref().and_then(|p| p.on_worker_start.as_ref()) {
                    hook(w);
                }
                pinned_worker_loop(cells, w, stride, parked, shutdown, placement)
            }
        })
        .expect("spawn imm-pin worker");
    PinnedWorker { parked, thread: handle.thread().clone(), join: Some(handle) }
}

impl<P: Pinned> PinnedPool<P> {
    /// Pool with [`WakeMode::Auto`]; `threads` counts the caller, so at
    /// most `threads - 1` workers spawn (never more than there are cells).
    pub fn new(states: Vec<P>, threads: usize) -> Self {
        Self::with_wake_mode(states, threads, WakeMode::Auto)
    }

    /// Pool with an explicit worker wake policy.
    pub fn with_wake_mode(states: Vec<P>, threads: usize, mode: WakeMode) -> Self {
        Self::with_placement(states, threads, mode, None)
    }

    /// Pool with an explicit wake policy and optional NUMA placement.
    /// See [`PoolPlacement`] for what the placement record drives.
    pub fn with_placement(
        states: Vec<P>,
        threads: usize,
        mode: WakeMode,
        placement: Option<PoolPlacement>,
    ) -> Self {
        crate::metrics::register();
        let placement = placement.map(Arc::new);
        let cells: Arc<[Cell<P>]> = states
            .into_iter()
            .map(|pinned| Cell { inner: Mutex::new(CellInner { pinned, queue: VecDeque::new() }) })
            .collect();
        let use_workers = match mode {
            WakeMode::Never => false,
            WakeMode::Always => true,
            WakeMode::Auto => thread::available_parallelism().map(|p| p.get()).unwrap_or(1) > 1,
        };
        let worker_count = if use_workers { threads.saturating_sub(1).min(cells.len()) } else { 0 };
        let shutdown = Arc::new(AtomicBool::new(false));
        let deaths = Arc::new(Deaths::new());
        let workers = (0..worker_count)
            .map(|w| {
                spawn_pinned_worker(w, worker_count, &cells, &shutdown, &deaths, placement.as_ref())
            })
            .collect();
        PinnedPool {
            cells,
            workers: Mutex::new(workers),
            worker_slots: worker_count,
            shutdown,
            deaths,
            restarts: AtomicU64::new(0),
            mode,
            placement,
        }
    }

    fn lock_workers(&self) -> MutexGuard<'_, Vec<PinnedWorker>> {
        self.workers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Respawn any workers whose threads died, re-pinning them to the
    /// same cell affinity (`worker index` + original stride). Called at
    /// the top of every scatter; a single relaxed-ish atomic check when
    /// nothing died.
    fn supervise(&self) {
        if self.deaths.count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut workers = self.lock_workers();
        for w in self.deaths.take() {
            metrics::PINNED_WORKER_RESTARTS.increment();
            self.restarts.fetch_add(1, Ordering::Relaxed);
            let fresh = spawn_pinned_worker(
                w,
                self.worker_slots,
                &self.cells,
                &self.shutdown,
                &self.deaths,
                self.placement.as_ref(),
            );
            let old = std::mem::replace(&mut workers[w], fresh);
            if let Some(handle) = old.join {
                // The thread already unwound; join only reaps it.
                let _ = handle.join();
            }
        }
    }

    /// How many dead workers this pool has respawned over its lifetime.
    pub fn worker_restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Number of cells (shards).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the pool holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of dedicated worker threads (0 means fully inline serving).
    pub fn num_workers(&self) -> usize {
        self.worker_slots
    }

    /// The wake policy this pool was built with.
    pub fn wake_mode(&self) -> WakeMode {
        self.mode
    }

    /// Current queue depth per cell (racy snapshot, for observability).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.cells.iter().map(|c| c.lock().queue.len()).collect()
    }

    /// Serve a single request on one cell, on the calling thread. This is
    /// the low-latency path for point lookups: one uncontended mutex, no
    /// allocation, no cross-thread traffic.
    pub fn call(&self, cell: usize, request: P::Request) -> P::Response {
        let mut inner = self.cells[cell].lock();
        inner.pinned.serve(request)
    }

    /// Direct exclusive access to a cell's pinned state, outside the
    /// request protocol (installation, rebuilds, inspection in tests).
    pub fn with_cell<R>(&self, cell: usize, f: impl FnOnce(&mut P) -> R) -> R {
        let mut inner = self.cells[cell].lock();
        f(&mut inner.pinned)
    }

    /// Exclusive access to *every* cell's pinned state at once, locking
    /// the cells in index order. This is the fused serving path for
    /// zero-worker pools: a caller driving many rounds against all cells
    /// pays each cell lock once per call instead of once per round.
    /// Concurrent callers also acquire in index order, so the multi-lock
    /// cannot deadlock against `call`/`scatter`/another `with_all_cells`.
    pub fn with_all_cells<R>(&self, f: impl FnOnce(&mut [&mut P]) -> R) -> R {
        let mut guards: Vec<MutexGuard<'_, CellInner<P>>> =
            self.cells.iter().map(Cell::lock).collect();
        let mut refs: Vec<&mut P> = guards.iter_mut().map(|g| &mut g.pinned).collect();
        f(&mut refs)
    }

    /// Scatter a batch of `(cell, request)` pairs and gather the responses
    /// in input order. Requests for distinct cells run in parallel when
    /// the pool has workers; the calling thread always helps drain the
    /// queues it filled, and with zero workers serves everything itself.
    ///
    /// If any `serve` panics, the round still drains fully and the first
    /// panic payload is re-thrown here. A worker *thread* death (only
    /// possible under injected faults or a runtime bug) panics too;
    /// callers that want to degrade gracefully use
    /// [`try_scatter`](Self::try_scatter).
    pub fn scatter<I>(&self, requests: I) -> Vec<P::Response>
    where
        I: IntoIterator<Item = (usize, P::Request)>,
    {
        self.try_scatter(requests).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`scatter`](Self::scatter), but a worker-thread death surfaces as
    /// a structured [`ScatterError`] instead of a panic. Dead workers
    /// found at entry are respawned (and re-pinned to their cells)
    /// before any request is enqueued.
    pub fn try_scatter<I>(&self, requests: I) -> Result<Vec<P::Response>, ScatterError>
    where
        I: IntoIterator<Item = (usize, P::Request)>,
    {
        metrics::PINNED_SCATTERS.increment();
        if self.worker_slots == 0 {
            return Ok(self.scatter_inline(requests));
        }
        self.supervise();
        self.scatter_queued(requests)
    }

    /// Zero-worker fast path: a plain loop over the requested cells.
    fn scatter_inline<I>(&self, requests: I) -> Vec<P::Response>
    where
        I: IntoIterator<Item = (usize, P::Request)>,
    {
        let requests = requests.into_iter();
        let mut first_panic: Option<Box<dyn Any + Send + 'static>> = None;
        let mut responses = Vec::with_capacity(requests.size_hint().0);
        let mut served = 0u64;
        for (cell, request) in requests {
            served += 1;
            let mut inner = self.cells[cell].lock();
            match panic::catch_unwind(AssertUnwindSafe(|| inner.pinned.serve(request))) {
                Ok(response) => responses.push(response),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        metrics::PINNED_SERVED_INLINE.add(served);
        if let Some(p) = &self.placement {
            // The calling thread is unplaced: inline serves are remote.
            p.remote.add(served);
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        responses
    }

    /// Worker path: enqueue envelopes, wake owners, help drain, park for
    /// stragglers.
    fn scatter_queued<I>(&self, requests: I) -> Result<Vec<P::Response>, ScatterError>
    where
        I: IntoIterator<Item = (usize, P::Request)>,
    {
        let batch: Vec<(usize, P::Request)> = requests.into_iter().collect();
        let gather = Arc::new(GatherShared::<P::Response>::new(thread::current(), batch.len()));
        let mut touched: Vec<usize> = Vec::with_capacity(batch.len());
        for (slot, (cell, request)) in batch.into_iter().enumerate() {
            metrics::PINNED_ENQUEUED.increment();
            let envelope =
                Envelope { request: Some(request), slot, gather: Arc::clone(&gather), done: false };
            self.cells[cell].lock().queue.push_back(envelope);
            if !touched.contains(&cell) {
                touched.push(cell);
            }
        }
        // Publish-then-check-parked needs a StoreLoad barrier on both
        // sides (Dekker); the worker park loop carries the matching fence.
        fence(Ordering::SeqCst);
        {
            let workers = self.lock_workers();
            let mut woken = vec![false; workers.len()];
            for &cell in &touched {
                let w = cell % workers.len();
                if !woken[w] && workers[w].parked.load(Ordering::SeqCst) {
                    woken[w] = true;
                    metrics::PINNED_UNPARKS.increment();
                    workers[w].thread.unpark();
                }
            }
        }
        // Help: drain every queue we filled. Whatever a worker already
        // popped is in flight and will complete on its own.
        for &cell in &touched {
            let mut inner = self.cells[cell].lock();
            while let Some(envelope) = inner.queue.pop_front() {
                serve_one(&mut inner, envelope, &metrics::PINNED_SERVED_INLINE);
                if let Some(p) = &self.placement {
                    // Help-drain runs on the unplaced gathering thread.
                    p.remote.increment();
                }
            }
        }
        // Wait out in-flight envelopes held by workers.
        loop {
            if gather.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            gather.owner_parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if gather.pending.load(Ordering::SeqCst) == 0 {
                gather.owner_parked.store(false, Ordering::SeqCst);
                break;
            }
            thread::park();
            gather.owner_parked.store(false, Ordering::SeqCst);
        }
        if let Some(payload) = gather.panic.lock().unwrap_or_else(PoisonError::into_inner).take() {
            panic::resume_unwind(payload);
        }
        let lost = gather.lost.load(Ordering::SeqCst);
        if lost > 0 {
            return Err(ScatterError { lost });
        }
        // All servers are done (pending == 0 observed SeqCst): the slots
        // are exclusively ours now.
        Ok(gather
            .slots
            .iter()
            .map(|slot| unsafe { (*slot.get()).take() }.expect("gather slot filled"))
            .collect())
    }
}

impl<P: Pinned> Drop for PinnedPool<P> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut workers = self.lock_workers();
        for worker in workers.iter() {
            worker.thread.unpark();
        }
        for worker in workers.iter_mut() {
            if let Some(handle) = worker.join.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<P: Pinned> fmt::Debug for PinnedPool<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinnedPool")
            .field("cells", &self.cells.len())
            .field("workers", &self.worker_slots)
            .field("restarts", &self.worker_restarts())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Adder {
        base: u64,
        served: u64,
    }

    impl Pinned for Adder {
        type Request = u64;
        type Response = u64;
        fn serve(&mut self, request: u64) -> u64 {
            self.served += 1;
            if request == u64::MAX {
                panic!("poison request");
            }
            self.base + request
        }
    }

    fn adders(n: usize) -> Vec<Adder> {
        (0..n).map(|i| Adder { base: (i as u64) * 1000, served: 0 }).collect()
    }

    #[test]
    fn inline_scatter_preserves_input_order() {
        let pool = PinnedPool::with_wake_mode(adders(3), 1, WakeMode::Never);
        assert_eq!(pool.num_workers(), 0);
        let out = pool.scatter(vec![(2, 7), (0, 1), (1, 5)]);
        assert_eq!(out, vec![2007, 1, 1005]);
    }

    #[test]
    fn worker_scatter_matches_inline_results() {
        let pool = PinnedPool::with_wake_mode(adders(4), 3, WakeMode::Always);
        assert!(pool.num_workers() >= 1);
        for round in 0..200u64 {
            let out = pool.scatter((0..4).map(|c| (c, round)));
            let expect: Vec<u64> = (0..4u64).map(|c| c * 1000 + round).collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn more_cells_than_workers_still_drains() {
        let pool = PinnedPool::with_wake_mode(adders(5), 2, WakeMode::Always);
        assert_eq!(pool.num_workers(), 1);
        let out = pool.scatter((0..5).map(|c| (c, 1)));
        assert_eq!(out, vec![1, 1001, 2001, 3001, 4001]);
    }

    #[test]
    fn call_and_with_cell_share_state() {
        let pool = PinnedPool::with_wake_mode(adders(2), 2, WakeMode::Always);
        assert_eq!(pool.call(1, 5), 1005);
        pool.with_cell(1, |a| a.base = 7000);
        assert_eq!(pool.call(1, 5), 7005);
        let served = pool.with_cell(1, |a| a.served);
        assert_eq!(served, 2);
    }

    #[test]
    fn duplicate_cells_in_one_scatter_serve_in_order() {
        let pool = PinnedPool::with_wake_mode(adders(2), 1, WakeMode::Never);
        let out = pool.scatter(vec![(0, 1), (0, 2), (1, 3), (0, 4)]);
        assert_eq!(out, vec![1, 2, 1003, 4]);
    }

    #[test]
    fn serve_panic_propagates_and_pool_survives() {
        for mode in [WakeMode::Never, WakeMode::Always] {
            let pool = PinnedPool::with_wake_mode(adders(2), 2, mode);
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.scatter(vec![(0, u64::MAX), (1, 3)]);
            }));
            assert!(caught.is_err(), "scatter must re-throw serve panics ({mode:?})");
            // The pool (cells, locks, workers) is unharmed.
            assert_eq!(pool.scatter(vec![(0, 2), (1, 3)]), vec![2, 1003]);
        }
    }

    #[test]
    fn queue_depths_are_zero_when_idle() {
        let pool = PinnedPool::with_wake_mode(adders(3), 2, WakeMode::Always);
        pool.scatter((0..3).map(|c| (c, 1)));
        assert_eq!(pool.queue_depths(), vec![0, 0, 0]);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
    }

    static TEST_LOCAL: Counter = Counter::new("test_placement_local", "test-only local counter");
    static TEST_REMOTE: Counter = Counter::new("test_placement_remote", "test-only remote counter");

    fn two_node_placement(hook: Option<Arc<dyn Fn(usize) + Send + Sync>>) -> PoolPlacement {
        // Two workers on nodes 0/1; four cells alternating between them.
        PoolPlacement {
            worker_node: vec![0, 1],
            cell_node: vec![0, 1, 0, 1],
            local: &TEST_LOCAL,
            remote: &TEST_REMOTE,
            on_worker_start: hook,
        }
    }

    #[test]
    fn placement_runs_the_start_hook_on_every_worker() {
        use std::collections::HashSet;
        let started: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
        let hook = {
            let started = Arc::clone(&started);
            Arc::new(move |w: usize| {
                started.lock().unwrap().insert(w);
            }) as Arc<dyn Fn(usize) + Send + Sync>
        };
        let pool = PinnedPool::with_placement(
            adders(4),
            3,
            WakeMode::Always,
            Some(two_node_placement(Some(hook))),
        );
        assert_eq!(pool.num_workers(), 2);
        // Serve a round so both workers have certainly started and the
        // hook set is stable before we read it.
        pool.scatter((0..4).map(|c| (c, 1)));
        // The hook runs on thread start, before any serving; after a full
        // scatter both workers exist (they may still be mid-hook only if
        // they never served, which the scatter above rules out for at
        // least one — poll briefly for the pair).
        for _ in 0..100 {
            if started.lock().unwrap().len() == 2 {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(*started.lock().unwrap(), HashSet::from([0, 1]));
    }

    #[test]
    fn placement_counts_every_serve_as_local_or_remote() {
        if !imm_obs::recording_enabled() {
            return;
        }
        let pool = PinnedPool::with_placement(
            adders(4),
            3,
            WakeMode::Always,
            Some(two_node_placement(None)),
        );
        let local_before = TEST_LOCAL.value();
        let remote_before = TEST_REMOTE.value();
        let rounds = 50u64;
        for round in 0..rounds {
            pool.scatter((0..4).map(|c| (c, round)));
        }
        let counted = (TEST_LOCAL.value() - local_before) + (TEST_REMOTE.value() - remote_before);
        assert_eq!(counted, rounds * 4, "every serve lands in exactly one bucket");
    }

    #[test]
    fn inline_pools_count_placed_serves_as_remote() {
        if !imm_obs::recording_enabled() {
            return;
        }
        let placement = PoolPlacement {
            worker_node: Vec::new(),
            cell_node: vec![0, 1],
            local: &TEST_LOCAL,
            remote: &TEST_REMOTE,
            on_worker_start: None,
        };
        let pool = PinnedPool::with_placement(adders(2), 1, WakeMode::Never, Some(placement));
        let local_before = TEST_LOCAL.value();
        let remote_before = TEST_REMOTE.value();
        pool.scatter(vec![(0, 1), (1, 2), (0, 3)]);
        assert_eq!(TEST_LOCAL.value(), local_before, "no placed workers, nothing is local");
        assert_eq!(TEST_REMOTE.value(), remote_before + 3);
    }

    #[test]
    fn placement_survives_supervised_respawn() {
        use std::sync::atomic::AtomicUsize;
        let starts = Arc::new(AtomicUsize::new(0));
        let hook = {
            let starts = Arc::clone(&starts);
            Arc::new(move |_w: usize| {
                starts.fetch_add(1, Ordering::SeqCst);
            }) as Arc<dyn Fn(usize) + Send + Sync>
        };
        let pool = PinnedPool::with_placement(
            adders(2),
            2,
            WakeMode::Always,
            Some(PoolPlacement {
                worker_node: vec![0],
                cell_node: vec![0, 0],
                local: &TEST_LOCAL,
                remote: &TEST_REMOTE,
                on_worker_start: Some(hook),
            }),
        );
        assert_eq!(pool.num_workers(), 1);
        let before = starts.load(Ordering::SeqCst);
        // Kill the worker thread with an injected loop fault, then
        // scatter: supervision respawns it and the hook must run again.
        imm_fault::with_plan(
            imm_fault::FaultConfig {
                worker_panic: 1.0,
                max_faults: 1,
                ..imm_fault::FaultConfig::seeded(11)
            },
            |_| {
                let _ = pool.try_scatter(vec![(0, 1), (1, 2)]);
                // Respawn happens at the top of the next scatter.
                for _ in 0..100 {
                    if pool.worker_restarts() > 0 {
                        break;
                    }
                    let _ = pool.try_scatter(vec![(0, 1)]);
                    thread::sleep(std::time::Duration::from_millis(1));
                }
            },
        );
        assert!(pool.worker_restarts() > 0, "the injected fault must kill a worker");
        for _ in 0..100 {
            if starts.load(Ordering::SeqCst) > before {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(starts.load(Ordering::SeqCst) > before, "respawned worker re-runs the hook");
    }
}

//! The shared fixed pool: long-lived workers, scoped fork-join submission.
//!
//! # Model
//!
//! An [`Executor`] built for `t` threads owns `t - 1` long-lived worker
//! threads; the thread calling [`Executor::scope`] is the `t`-th. Every
//! spawned task becomes a reference-counted `Job` that lives in two
//! places at once:
//!
//! * the scope's own job list, where the **owner** (the thread inside
//!   `scope`) claims and runs still-unclaimed jobs while it waits, and
//! * at most one worker's SPSC inbox, where the worker claims jobs the
//!   owner has not reached yet.
//!
//! A one-byte claim CAS arbitrates; whoever wins runs the task, the loser
//! skips. This "owner helps" discipline is what makes the pool safe on any
//! machine shape: with zero workers (`t == 1`, the default on a 1-CPU
//! host) every task runs inline on the owner with no parking, no wakeups
//! and no cross-thread traffic, and a scope can never deadlock waiting for
//! a worker that does not exist. Nested scopes entered from a worker
//! thread are safe for the same reason — the nested owner drives its own
//! jobs to completion without needing a free worker.
//!
//! # Shutdown and panics
//!
//! Dropping the executor (never done for the process-global one) flags
//! shutdown, unparks every worker and joins them; workers drain their
//! inbox first. A panicking task is caught on the worker, stored in its
//! scope, and re-thrown on the owner when the scope ends — workers survive
//! and the pool is never poisoned.

use std::any::Any;
use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle, Thread};

use crate::metrics::{self, Counter};
use crate::spsc;

/// Times the process-global executor was explicitly configured.
pub static GLOBAL_CONFIGS: Counter = Counter::new(
    "exec_global_configs",
    "Explicit configure_global calls that installed the process-global pool",
);

/// Capacity of each worker's SPSC inbox; overflow runs on the submitter.
const INBOX_CAPACITY: usize = 256;

const READY: u8 = 0;
const CLAIMED: u8 = 1;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// One spawned task, claimable exactly once (by a worker or by the helping
/// scope owner).
struct Job {
    claim: AtomicU8,
    func: UnsafeCell<Option<Task>>,
    scope: Arc<ScopeState>,
}

// `func` is only touched by the claim winner; the CAS on `claim` (AcqRel)
// is the hand-off point.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim the job; `Some(task)` exactly once across all threads.
    fn claim(&self) -> Option<Task> {
        if self.claim.compare_exchange(READY, CLAIMED, Ordering::AcqRel, Ordering::Relaxed).is_ok()
        {
            unsafe { (*self.func.get()).take() }
        } else {
            None
        }
    }

    fn is_ready(&self) -> bool {
        self.claim.load(Ordering::Acquire) == READY
    }
}

/// Claim and run a job, routing its completion back to the scope. The
/// counter identifies who ran it (worker / helping owner / overflow).
fn run_job(job: &Job, ran_by: &Counter) {
    let Some(task) = job.claim() else { return };
    ran_by.increment();
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(task)) {
        job.scope.store_panic(payload);
    }
    job.scope.complete_one();
}

/// Shared bookkeeping for one `scope` call.
struct ScopeState {
    /// Spawned-but-not-finished job count; the scope ends when this is 0.
    pending: AtomicUsize,
    /// The thread inside `Executor::scope`, unparked when work completes.
    owner: Thread,
    /// True while the owner is in (or committing to) `thread::park`.
    owner_parked: AtomicBool,
    /// First panic payload from any task, re-thrown at scope exit.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Every job spawned on this scope, in submission order (helping list).
    jobs: Mutex<Vec<Arc<Job>>>,
    /// Owner's helping cursor into `jobs` (owner-advanced only).
    cursor: AtomicUsize,
}

impl ScopeState {
    fn new(owner: Thread) -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            owner,
            owner_parked: AtomicBool::new(false),
            panic: Mutex::new(None),
            jobs: Mutex::new(Vec::new()),
            cursor: AtomicUsize::new(0),
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Mark one job finished; wake the owner when the scope drains.
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1
            && self.owner_parked.load(Ordering::SeqCst)
        {
            self.owner.unpark();
        }
    }

    /// Next job the owner has not walked past that still looks claimable.
    fn next_unclaimed(&self) -> Option<Arc<Job>> {
        let jobs = self.jobs.lock().unwrap();
        let mut cursor = self.cursor.load(Ordering::Relaxed);
        while cursor < jobs.len() {
            let job = &jobs[cursor];
            cursor += 1;
            if job.is_ready() {
                self.cursor.store(cursor, Ordering::Relaxed);
                return Some(Arc::clone(job));
            }
        }
        self.cursor.store(cursor, Ordering::Relaxed);
        None
    }

    /// Any claimable job at or past the owner's cursor?
    fn has_unclaimed(&self) -> bool {
        let jobs = self.jobs.lock().unwrap();
        let cursor = self.cursor.load(Ordering::Relaxed).min(jobs.len());
        jobs[cursor..].iter().any(|job| job.is_ready())
    }

    /// Owner-side wait: help run unclaimed jobs, park only when every
    /// remaining job is already claimed by a worker.
    fn wait_with_help(&self) {
        loop {
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = self.next_unclaimed() {
                run_job(&job, &metrics::TASKS_HELPED);
                continue;
            }
            self.owner_parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if self.pending.load(Ordering::SeqCst) == 0 || self.has_unclaimed() {
                self.owner_parked.store(false, Ordering::SeqCst);
                continue;
            }
            thread::park();
            self.owner_parked.store(false, Ordering::SeqCst);
        }
    }
}

struct Worker {
    /// Producer half of the worker's inbox (mutex: many scopes submit).
    inbox: Mutex<spsc::Producer<Arc<Job>>>,
    /// True while the worker is in (or committing to) `thread::park`.
    parked: Arc<AtomicBool>,
    /// Unpark handle.
    thread: Thread,
    join: Option<JoinHandle<()>>,
}

fn worker_loop(
    mut inbox: spsc::Consumer<Arc<Job>>,
    parked: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        if let Some(job) = inbox.pop() {
            run_job(&job, &metrics::TASKS_WORKER);
            continue;
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if !inbox.is_empty() || shutdown.load(Ordering::SeqCst) {
            parked.store(false, Ordering::SeqCst);
            continue;
        }
        metrics::WORKER_PARKS.increment();
        thread::park();
        parked.store(false, Ordering::SeqCst);
    }
}

/// A fixed pool of long-lived workers with scoped fork-join submission.
///
/// See the [module docs](self) for the execution model. Most code should
/// use the process-global instance via [`global`] (configured once at
/// startup with [`configure_global`]); standalone pools are for tests and
/// embedding.
pub struct Executor {
    workers: Box<[Worker]>,
    /// Round-robin submission cursor over `workers`.
    next: AtomicUsize,
    shutdown: Arc<AtomicBool>,
    threads: usize,
}

impl Executor {
    /// A pool presenting `threads` units of parallelism: `threads - 1`
    /// spawned workers plus the calling thread inside every scope.
    /// `threads` is clamped to at least 1; with exactly 1, no worker
    /// threads exist and every task runs inline on the scope owner.
    pub fn new(threads: usize) -> Self {
        metrics::register();
        let threads = threads.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = (0..threads - 1)
            .map(|i| {
                let (tx, rx) = spsc::channel(INBOX_CAPACITY);
                let parked = Arc::new(AtomicBool::new(false));
                let handle = thread::Builder::new()
                    .name(format!("imm-exec-{i}"))
                    .spawn({
                        let parked = Arc::clone(&parked);
                        let shutdown = Arc::clone(&shutdown);
                        move || worker_loop(rx, parked, shutdown)
                    })
                    .expect("spawn imm-exec worker");
                Worker {
                    inbox: Mutex::new(tx),
                    parked,
                    thread: handle.thread().clone(),
                    join: Some(handle),
                }
            })
            .collect();
        Executor { workers, next: AtomicUsize::new(0), shutdown, threads }
    }

    /// The parallelism this pool was built with (workers + scope owner).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Current inbox depth per worker (racy snapshot, for observability).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.inbox.lock().unwrap().len()).collect()
    }

    /// Scoped fork-join: `op` may [`Scope::spawn`] tasks borrowing from
    /// `'env`; every task completes before `scope` returns. The calling
    /// thread runs `op`, then helps run unclaimed tasks. Mirrors
    /// `rayon::scope` (and `std::thread::scope`) semantics, including
    /// re-throwing the first task panic on the caller.
    pub fn scope<'env, OP, R>(&self, op: OP) -> R
    where
        OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        metrics::SCOPES.increment();
        let state = Arc::new(ScopeState::new(thread::current()));
        let scope = Scope { state: Arc::clone(&state), exec: self, _marker: PhantomData };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Tasks borrow `'env` data: the scope MUST drain before returning
        // or unwinding past the borrowed frame.
        state.wait_with_help();
        let task_panic = state.panic.lock().unwrap().take();
        match result {
            Err(payload) => panic::resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = task_panic {
                    panic::resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Run two closures, potentially in parallel, returning both results.
    /// Mirrors `rayon::join`: `oper_a` runs on the caller.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|s| {
            let slot = &mut rb;
            s.spawn(move |_| *slot = Some(oper_b()));
            oper_a()
        });
        (ra, rb.expect("join task completed"))
    }

    /// Enqueue a type-erased task for the given scope.
    fn submit(&self, state: &Arc<ScopeState>, task: Task) {
        metrics::TASKS_SPAWNED.increment();
        state.pending.fetch_add(1, Ordering::SeqCst);
        let job = Arc::new(Job {
            claim: AtomicU8::new(READY),
            func: UnsafeCell::new(Some(task)),
            scope: Arc::clone(state),
        });
        state.jobs.lock().unwrap().push(Arc::clone(&job));
        let mut overflow = false;
        if !self.workers.is_empty() {
            let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
            let worker = &self.workers[idx];
            let pushed = worker.inbox.lock().unwrap().push(Arc::clone(&job)).is_ok();
            // Publish-then-check-parked needs a StoreLoad barrier on both
            // sides (Dekker); the park loops carry the matching fence.
            fence(Ordering::SeqCst);
            if pushed {
                if worker.parked.load(Ordering::SeqCst) {
                    metrics::WORKER_UNPARKS.increment();
                    worker.thread.unpark();
                }
            } else {
                overflow = true;
            }
        } else {
            fence(Ordering::SeqCst);
        }
        // A parked owner (helping list exhausted) must learn about the new
        // job — nested spawns can arrive while the owner sleeps.
        if state.owner_parked.load(Ordering::SeqCst) {
            state.owner.unpark();
        }
        if overflow {
            run_job(&job, &metrics::TASKS_OVERFLOW);
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for worker in self.workers.iter() {
            worker.thread.unpark();
        }
        for worker in self.workers.iter_mut() {
            if let Some(handle) = worker.join.take() {
                // Workers catch task panics, so join only fails if a
                // worker itself died; nothing useful to do while dropping.
                let _ = handle.join();
            }
        }
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Spawn handle passed to the closure of [`Executor::scope`]; mirrors
/// `rayon::Scope`. `'scope` is the lifetime of the scope itself, `'env`
/// the environment it may borrow from.
pub struct Scope<'scope, 'env: 'scope> {
    state: Arc<ScopeState>,
    exec: &'scope Executor,
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that runs concurrently with the rest of the scope and
    /// completes before the enclosing [`Executor::scope`] returns. The
    /// task receives a scope handle for nested spawns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        let exec = self.exec;
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope { state, exec, _marker: PhantomData };
            f(&scope);
        });
        // SAFETY: erasing `'scope` to `'static` is sound because
        // `Executor::scope` blocks (wait_with_help) until `pending == 0`,
        // i.e. every spawned task has run or been dropped, before the
        // `'scope`/`'env` borrows can expire — the same argument as
        // `std::thread::scope`. The executor itself outlives the task
        // because `scope` borrows it for the full wait.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        self.exec.submit(&self.state, task);
    }
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();

/// Error from [`configure_global`] when the global pool already exists.
#[derive(Debug)]
pub struct GlobalPoolError;

impl fmt::Display for GlobalPoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "global executor already initialized")
    }
}

impl std::error::Error for GlobalPoolError {}

/// The pool size used when nothing configures one explicitly: the
/// `IMM_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("IMM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Install the process-global executor with an explicit thread count.
/// Callable successfully at most once, before anything touches
/// [`global`]; later calls (or calls after `global()` auto-initialized)
/// fail with [`GlobalPoolError`] and leave the existing pool untouched.
pub fn configure_global(threads: usize) -> Result<(), GlobalPoolError> {
    if GLOBAL.get().is_some() {
        return Err(GlobalPoolError);
    }
    match GLOBAL.set(Executor::new(threads)) {
        Ok(()) => {
            GLOBAL_CONFIGS.increment();
            Ok(())
        }
        // Lost an init race: the just-built pool drops (joins cleanly).
        Err(_) => Err(GlobalPoolError),
    }
}

/// The process-global executor, initialized on first use with
/// [`default_threads`] unless [`configure_global`] ran first.
pub fn global() -> &'static Executor {
    GLOBAL.get_or_init(|| Executor::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn inline_pool_runs_every_task_on_the_owner() {
        let exec = Executor::new(1);
        assert_eq!(exec.num_threads(), 1);
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn worker_pool_joins_all_spawns() {
        let exec = Executor::new(4);
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..512 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 512);
    }

    #[test]
    fn tasks_can_write_disjoint_env_slots() {
        let exec = Executor::new(3);
        let slots: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        exec.scope(|s| {
            for (i, slot) in slots.iter().enumerate() {
                s.spawn(move |_| {
                    slot.store(i + 1, Ordering::Relaxed);
                });
            }
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), i + 1);
        }
    }

    #[test]
    fn nested_spawn_and_nested_scope_complete() {
        let exec = Executor::new(2);
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                // A full nested scope from inside a task must also drain.
                global().scope(|inner| {
                    inner.spawn(|_| {
                        counter.fetch_add(10, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn join_returns_both_results() {
        let exec = Executor::new(2);
        let (a, b) = exec.join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let exec = Executor::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|_| panic!("task boom"));
                s.spawn(|_| {});
            });
        }));
        assert!(caught.is_err(), "scope must re-throw the task panic");
        // The pool is not poisoned: a later scope completes normally.
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn overflow_beyond_inbox_capacity_still_completes() {
        let exec = Executor::new(2);
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..(INBOX_CAPACITY * 4) {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), INBOX_CAPACITY * 4);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}

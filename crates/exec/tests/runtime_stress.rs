//! Stress suite for the persistent execution runtime: panic recovery,
//! shutdown under churn, nested fork-join, and degenerate pool shapes.
//!
//! The in-crate unit tests pin down each mechanism in isolation; these
//! tests hammer the same guarantees across repeated cycles and through
//! the public API only, the way the engines use it.

use imm_exec::{Executor, Pinned, PinnedPool, WakeMode};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A trivial pinned cell: counts requests, panics on demand.
struct Tally {
    served: usize,
}

enum Req {
    Add(usize),
    Boom,
}

impl Pinned for Tally {
    type Request = Req;
    type Response = usize;

    fn serve(&mut self, request: Req) -> usize {
        match request {
            Req::Add(n) => {
                self.served += n;
                self.served
            }
            Req::Boom => panic!("tally boom"),
        }
    }
}

fn tally_pool(cells: usize, threads: usize, mode: WakeMode) -> PinnedPool<Tally> {
    PinnedPool::with_wake_mode((0..cells).map(|_| Tally { served: 0 }).collect(), threads, mode)
}

// ---------------------------------------------------------------------
// Panic propagation without poisoning
// ---------------------------------------------------------------------

#[test]
fn executor_survives_repeated_task_panics() {
    for &threads in &[1usize, 4] {
        let pool = Executor::new(threads);
        let completed = AtomicUsize::new(0);
        for round in 0..25 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..8 {
                        s.spawn(|_| {
                            completed.fetch_add(1, Ordering::Relaxed);
                        });
                        if i == 3 {
                            s.spawn(|_| panic!("round {round} task panic"));
                        }
                    }
                })
            }));
            assert!(result.is_err(), "the task panic reaches the scope owner");
            // The pool must keep working after every single panic.
            let (a, b) = pool.join(|| 2, || 3);
            assert_eq!(a * b, 6);
        }
        // Panics never cancel sibling tasks: the scope drains fully.
        assert_eq!(completed.into_inner(), 25 * 8);
    }
}

#[test]
fn pinned_pool_survives_repeated_serve_panics() {
    for &mode in &[WakeMode::Never, WakeMode::Always] {
        let pool = tally_pool(3, 4, mode);
        for round in 0..25 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scatter(vec![(0, Req::Add(1)), (1, Req::Boom), (2, Req::Add(1))])
            }));
            assert!(result.is_err(), "round {round}: the serve panic reaches the caller");
            // Neither the panicking cell nor its siblings are poisoned.
            let responses =
                pool.scatter(vec![(0, Req::Add(0)), (1, Req::Add(1)), (2, Req::Add(0))]);
            assert_eq!(responses[0], round + 1, "cell 0 kept its pre-panic state");
            assert_eq!(responses[1], round + 1, "the panicking cell still serves");
            assert_eq!(responses[2], round + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Shutdown under churn (drop right after heavy traffic)
// ---------------------------------------------------------------------

#[test]
fn executor_drops_cleanly_right_after_a_burst() {
    // Exercises shutdown while workers are still winding down from a
    // burst: no hangs, no lost tasks, across many build/drop cycles.
    let completed = Arc::new(AtomicUsize::new(0));
    for _ in 0..20 {
        let pool = Executor::new(4);
        pool.scope(|s| {
            for _ in 0..64 {
                let completed = Arc::clone(&completed);
                s.spawn(move |_| {
                    completed.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        drop(pool);
    }
    assert_eq!(completed.load(Ordering::Relaxed), 20 * 64);
}

#[test]
fn pinned_pool_drops_cleanly_right_after_slow_serves() {
    for _ in 0..10 {
        let pool = PinnedPool::with_wake_mode(
            (0..4).map(|_| Slow).collect::<Vec<_>>(),
            4,
            WakeMode::Always,
        );
        let responses = pool.scatter((0..4).map(|c| (c, ())));
        assert_eq!(responses.len(), 4);
        drop(pool); // workers may still be between serving and parking
    }

    struct Slow;
    impl Pinned for Slow {
        type Request = ();
        type Response = ();
        fn serve(&mut self, (): ()) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

// ---------------------------------------------------------------------
// Nested scopes
// ---------------------------------------------------------------------

#[test]
fn nested_scopes_complete_on_any_pool_size() {
    for &threads in &[1usize, 2, 8] {
        let pool = Executor::new(threads);
        let leaf = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|_| {
                    // A fresh nested scope from inside a running task; the
                    // owner-helps discipline makes this deadlock-free even
                    // on a 1-thread (pure inline) pool.
                    imm_exec::global().scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|_| {
                                leaf.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(leaf.into_inner(), 16, "threads = {threads}");
    }
}

#[test]
fn deeply_nested_joins_stay_inline_safe() {
    fn fib(pool: &Executor, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) =
            pool.join(|| fib(imm_exec::global(), n - 1), || fib(imm_exec::global(), n - 2));
        a + b
    }
    let pool = Executor::new(1);
    assert_eq!(fib(&pool, 16), 987);
}

// ---------------------------------------------------------------------
// Degenerate sizes
// ---------------------------------------------------------------------

#[test]
fn one_thread_pool_is_a_pure_inline_executor() {
    let pool = Executor::new(1);
    assert_eq!(pool.num_threads(), 1);
    let main_id = std::thread::current().id();
    let mut ran_on = Vec::new();
    pool.scope(|s| {
        s.spawn(|_| {}); // interleave spawns and captures
    });
    pool.scope(|_| {
        ran_on.push(std::thread::current().id());
    });
    assert_eq!(ran_on, vec![main_id]);
}

#[test]
fn many_more_cells_than_workers_still_gather_everything() {
    // 16 cells, 2 threads => 1 worker owning every cell; the scattering
    // thread help-drains, so the round completes regardless of the split.
    let pool = tally_pool(16, 2, WakeMode::Always);
    assert!(pool.num_workers() >= 1);
    for round in 1..=10usize {
        let responses = pool.scatter((0..16).map(|c| (c, Req::Add(c))));
        assert_eq!(responses.len(), 16);
        for (c, &r) in responses.iter().enumerate() {
            assert_eq!(r, c * round, "cell {c} accumulated its own requests only");
        }
    }
}

#[test]
fn single_cell_pool_serializes_all_requests() {
    let pool = tally_pool(1, 8, WakeMode::Always);
    let responses = pool.scatter((0..100).map(|_| (0, Req::Add(1))));
    // In-order serving over one cell: responses are the running tally.
    assert_eq!(responses, (1..=100).collect::<Vec<_>>());
    assert_eq!(pool.with_cell(0, |t| t.served), 100);
}

#[test]
fn with_all_cells_sees_every_cell_exactly_once() {
    let pool = tally_pool(5, 1, WakeMode::Never);
    pool.scatter((0..5).map(|c| (c, Req::Add(c + 1))));
    let total = pool.with_all_cells(|cells| {
        assert_eq!(cells.len(), 5);
        cells.iter_mut().map(|t| t.served).sum::<usize>()
    });
    assert_eq!(total, 1 + 2 + 3 + 4 + 5);
}

//! Pinned-pool supervision under injected worker deaths.
//!
//! `imm-fault`'s `worker_panic_point` sits in the pinned worker loop
//! *outside* the request-level `catch_unwind`, so an injected panic
//! kills the worker thread with an envelope in hand — the failure mode
//! PR 6's scope-level panic propagation could not absorb. These tests
//! prove the three supervision guarantees end to end:
//!
//! 1. no hang: the scattering thread unblocks with a structured
//!    [`ScatterError`] instead of parking on a gather that can never
//!    complete;
//! 2. no poisoning: cells and their pinned state keep serving;
//! 3. self-healing: the next scatter respawns the dead worker over the
//!    same cell affinity and answers correctly again.

use imm_exec::{Pinned, PinnedPool, WakeMode};
use imm_fault::FaultConfig;
use std::sync::Once;
use std::time::Duration;

/// Injected worker panics unwind with the default hook's backtrace
/// noise; keep the test output readable but forward real panics.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

struct SlowAdder {
    base: u64,
}

impl Pinned for SlowAdder {
    type Request = u64;
    type Response = u64;
    fn serve(&mut self, request: u64) -> u64 {
        // Slow enough that a woken worker reliably reaches its queue
        // while the scattering thread is still help-draining.
        std::thread::sleep(Duration::from_micros(300));
        self.base + request
    }
}

fn pool(cells: usize, threads: usize) -> PinnedPool<SlowAdder> {
    let states = (0..cells).map(|i| SlowAdder { base: (i as u64) * 1000 }).collect();
    PinnedPool::with_wake_mode(states, threads, WakeMode::Always)
}

fn batch(cells: usize, per_cell: u64) -> Vec<(usize, u64)> {
    (0..cells).flat_map(|c| (0..per_cell).map(move |r| (c, r))).collect()
}

fn expected(requests: &[(usize, u64)]) -> Vec<u64> {
    requests.iter().map(|&(c, r)| (c as u64) * 1000 + r).collect()
}

#[test]
fn injected_worker_death_degrades_structurally_and_pool_self_heals() {
    quiet_injected_panics();
    let pool = pool(8, 3);
    assert!(pool.num_workers() >= 1, "this test needs real workers");
    let requests = batch(8, 40);

    // Exactly one injected death: the first envelope a worker pops
    // panics the worker thread; the budget then goes quiet.
    imm_fault::with_plan(
        FaultConfig { worker_panic: 1.0, max_faults: 1, ..FaultConfig::seeded(1) },
        |plan| {
            let mut degraded = None;
            for round in 0..200 {
                match pool.try_scatter(requests.clone()) {
                    Err(e) => {
                        assert!(e.lost >= 1, "a death must lose at least the held envelope");
                        degraded = Some(round);
                        break;
                    }
                    // The help-drain can win the race and serve the whole
                    // round before any worker pops; results must then be
                    // exactly right.
                    Ok(out) => assert_eq!(out, expected(&requests), "round {round}"),
                }
            }
            degraded.expect("200 rounds of worker-first traffic must hit the injected death");
            assert_eq!(plan.injected(), 1, "budget capped the plan at one death");

            // Self-heal: the very next scatter respawns the worker and
            // answers byte-identically (the plan's budget is spent, so
            // nothing new is injected).
            let healed = pool.try_scatter(requests.clone()).expect("pool must self-heal");
            assert_eq!(healed, expected(&requests));
            assert_eq!(pool.worker_restarts(), 1, "exactly one worker was respawned");
        },
    );
}

#[test]
fn repeated_deaths_never_hang_and_always_heal() {
    quiet_injected_panics();
    let pool = pool(4, 3);
    assert!(pool.num_workers() >= 1);
    let requests = batch(4, 25);

    imm_fault::with_plan(
        // Every 50th worker pop dies, forever: several deaths across the
        // run, interleaved with healthy rounds.
        FaultConfig { worker_panic: 0.02, ..FaultConfig::seeded(7) },
        |_| {
            let mut errors = 0;
            for round in 0..120 {
                match pool.try_scatter(requests.clone()) {
                    Ok(out) => assert_eq!(out, expected(&requests), "round {round}"),
                    Err(e) => {
                        assert!(e.lost >= 1);
                        errors += 1;
                    }
                }
            }
            // Structured errors are allowed; silent wrong answers and
            // hangs are not (reaching this line proves no hang).
            assert!(errors <= 120);
        },
    );

    // Plan cleared: the pool must serve perfectly again.
    for _ in 0..10 {
        assert_eq!(pool.scatter(requests.clone()), expected(&requests));
    }
}

#[test]
fn call_and_with_cell_survive_a_dead_worker() {
    quiet_injected_panics();
    let pool = pool(2, 2);
    assert!(pool.num_workers() >= 1);
    let requests = batch(2, 30);

    imm_fault::with_plan(
        FaultConfig { worker_panic: 1.0, max_faults: 1, ..FaultConfig::seeded(3) },
        |plan| {
            for _ in 0..200 {
                if pool.try_scatter(requests.clone()).is_err() {
                    break;
                }
            }
            assert_eq!(plan.injected(), 1, "the worker must have died");
            // Direct cell access works while the worker is down: the
            // dead thread dropped its cell lock when it unwound.
            assert_eq!(pool.call(0, 5), 5);
            assert_eq!(pool.call(1, 5), 1005);
            pool.with_cell(0, |a| a.base = 9000);
            assert_eq!(pool.call(0, 5), 9005);
            pool.with_cell(0, |a| a.base = 0);
        },
    );
}

//! Daemon-level fault tolerance: idle connections get a structured
//! goodbye, lost connections are typed and survivable through the
//! retrying client (including across a full daemon restart), a failed
//! rollout leaves the old generation serving byte-identically until a
//! retry lands, and a zero batch deadline answers every query with a
//! structured rejection instead of running it.

use imm_diffusion::DiffusionModel;
use imm_fault::FaultConfig;
use imm_graph::{generators, CsrGraph, EdgeWeights, GraphDelta};
use imm_serve::{
    Client, ClientError, Listen, Rejection, RetryClient, RetryPolicy, ServeError, Server,
    ServerConfig,
};
use imm_service::{DeltaJournal, Query, SampleSpec, SketchIndex};
use imm_shard::{ShardedEngine, ShardedIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> (CsrGraph, EdgeWeights, SketchIndex) {
    let mut rng = SmallRng::seed_from_u64(0xFA);
    let graph = CsrGraph::from_edge_list(&generators::social_network(90, 4, 0.3, &mut rng));
    let weights = EdgeWeights::constant(&graph, 0.2);
    let spec = SampleSpec::new(DiffusionModel::IndependentCascade, 0xFA17);
    let index =
        SketchIndex::sample(&graph, &weights, spec, 120, 2, "fault-tolerance").expect("sample");
    (graph, weights, index)
}

fn queries(num_nodes: usize) -> Vec<Query> {
    let n = num_nodes as u32;
    vec![
        Query::top_k(5),
        Query::top_k(1),
        Query::Spread { seeds: vec![3, n - 1] },
        Query::Marginal { seeds: vec![7], candidate: 11 },
        Query::top_k(9),
    ]
}

fn unix_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("imm_serve_fault_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

fn config(path: PathBuf) -> ServerConfig {
    let mut config = ServerConfig::new(Listen::Unix(path));
    config.threads = 2;
    config.tick = Duration::from_millis(10);
    config
}

/// An idle connection is closed with a structured [`ServeError::IdleTimeout`]
/// goodbye (counted in `serve_conn_timeouts`), and the retrying client heals
/// over it by reconnecting.
#[test]
fn idle_connections_are_shed_with_a_structured_goodbye() {
    let (_, _, index) = fixture();
    let path = unix_path("idle.sock");
    let mut server_config = config(path);
    server_config.idle_timeout = Some(Duration::from_millis(120));
    let sharded = ShardedIndex::from_index(index, 2).expect("shardable");
    let handle =
        Server::start(Arc::new(sharded), None, server_config, || "{}".into()).expect("server");
    let timeouts_before = imm_serve::metrics::CONN_TIMEOUTS.value();

    // A raw client sees the close as either the goodbye frame or a lost
    // connection (depending on whether its write outruns the reset) —
    // both typed, both retryable, never a hang or a panic.
    let mut raw =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
    raw.ping().expect("a fresh connection serves");
    std::thread::sleep(Duration::from_millis(400));
    match raw.ping() {
        Err(ClientError::Server(ServeError::IdleTimeout { idle_ms })) => {
            assert!(idle_ms >= 120, "reported idle time {idle_ms} ms below the limit")
        }
        Err(ClientError::ConnectionLost { .. }) | Err(ClientError::Closed) => {}
        other => panic!("an idled-out connection must fail typed, got {other:?}"),
    }
    assert!(
        imm_serve::metrics::CONN_TIMEOUTS.value() > timeouts_before,
        "the idle close must be counted in serve_conn_timeouts"
    );

    // The retrying client eats the same close transparently.
    let mut retry = RetryClient::new(handle.address().clone(), RetryPolicy::default());
    retry.ping().expect("first ping");
    std::thread::sleep(Duration::from_millis(400));
    retry.ping().expect("the retry client must reconnect through an idle close");
    assert!(
        retry.budget_left() < RetryPolicy::default().budget,
        "healing the idle close must spend retry budget"
    );

    retry.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

/// A full daemon restart: the retrying client types the dead socket as a
/// lost connection, redials, and the same battery serves byte-identically
/// from the reborn daemon.
#[test]
fn the_retry_client_survives_a_daemon_restart() {
    let (_, _, index) = fixture();
    let path = unix_path("restart.sock");
    let sharded = ShardedIndex::from_index(index.clone(), 2).expect("shardable");
    let handle = Server::start(Arc::new(sharded), None, config(path.clone()), || "{}".into())
        .expect("server");

    let local = ShardedEngine::with_options(
        Arc::new(ShardedIndex::from_index(index.clone(), 2).expect("shardable")),
        2,
        64,
    );
    let battery = queries(index.num_nodes());
    let expected = local.execute_batch(&battery, 2);

    let mut retry = RetryClient::new(handle.address().clone(), RetryPolicy::default());
    let first = retry.batch(&battery).expect("batch against the first daemon");
    for (got, want) in first.iter().zip(expected.iter()) {
        assert_eq!(got.as_ref().expect("admitted"), want);
    }

    // Kill the daemon; the client's pooled connection is now a corpse.
    retry.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");

    // A call against the corpse with no daemon behind it fails typed —
    // lost connection or connect error — after the retry loop drains.
    let mut against_corpse = retry;
    match against_corpse.ping() {
        Err(ClientError::Connect(_)) | Err(ClientError::ConnectionLost { .. }) => {}
        other => panic!("a dead daemon must fail typed, got {other:?}"),
    }

    // Rebirth on the same address: the same client heals by redialing.
    std::fs::remove_file(&path).ok();
    let sharded = ShardedIndex::from_index(index.clone(), 2).expect("shardable");
    let handle =
        Server::start(Arc::new(sharded), None, config(path), || "{}".into()).expect("reborn");
    let again = against_corpse.batch(&battery).expect("batch against the reborn daemon");
    for (i, (got, want)) in again.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got.as_ref().expect("admitted"), want, "query {i} diverged after restart");
    }

    against_corpse.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

/// A fault injected mid-rollout (before the rebuild, then again between
/// the rebuild and the swap) refuses the delta with a structured error,
/// the **old** generation keeps serving byte-identically, and the retry
/// goes through — after which only the new generation answers, and the
/// journal holds exactly the one accepted delta.
#[test]
fn failed_rollouts_keep_the_old_generation_until_a_retry_lands() {
    let (graph, weights, index) = fixture();
    let path = unix_path("rollout.sock");
    let journal_path = unix_path("rollout.journal");
    let mut server_config = config(path);
    server_config.journal = Some(journal_path.clone());
    let sharded = ShardedIndex::from_index(index.clone(), 2).expect("shardable");
    let handle = Server::start(
        Arc::new(sharded),
        Some((graph.clone(), weights.clone())),
        server_config,
        || "{}".into(),
    )
    .expect("server");

    let mut local = ShardedEngine::with_options(
        Arc::new(ShardedIndex::from_index(index.clone(), 2).expect("shardable")),
        2,
        64,
    );
    let battery = queries(index.num_nodes());
    let delta = GraphDelta::new().insert(3, 40, 0.7).insert(80, 9, 0.5);

    imm_fault::with_plan(FaultConfig { fail_first: 1, ..FaultConfig::seeded(17) }, |_| {
        let mut client =
            Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");

        // Attempt 1 dies before the rebuild; attempt 2 dies after the
        // rebuild but before the swap. Both refuse with a structured
        // error and leave the old generation serving byte-identically.
        for attempt in 1..=2 {
            match client.apply_delta(&delta.to_text()) {
                Err(ClientError::Server(ServeError::Delta { detail })) => {
                    assert!(
                        detail.contains("injected fault"),
                        "attempt {attempt}: unexpected refusal: {detail}"
                    )
                }
                other => panic!("attempt {attempt} must refuse with a Delta error, got {other:?}"),
            }
            assert_eq!(client.info().expect("info").rollouts, 0, "attempt {attempt}");
            let answers = client.batch(&battery).expect("old generation serves");
            for (i, (got, want)) in
                answers.iter().zip(local.execute_batch(&battery, 2).iter()).enumerate()
            {
                assert_eq!(
                    got.as_ref().expect("admitted"),
                    want,
                    "attempt {attempt}: query {i} diverged from the old generation"
                );
            }
            assert!(
                DeltaJournal::read_entries(&journal_path).expect("journal reads").is_empty(),
                "attempt {attempt}: a refused rollout must not be journaled"
            );
        }

        // The retry lands: both fail points have spent their budget.
        client.apply_delta(&delta.to_text()).expect("third attempt commits");
        assert_eq!(client.info().expect("info").rollouts, 1);
        local.apply_delta(&graph, &weights, &delta).expect("local refresh");
        let answers = client.batch(&battery).expect("new generation serves");
        for (i, (got, want)) in
            answers.iter().zip(local.execute_batch(&battery, 2).iter()).enumerate()
        {
            assert_eq!(
                got.as_ref().expect("admitted"),
                want,
                "query {i} diverged from the new generation"
            );
        }
        let entries = DeltaJournal::read_entries(&journal_path).expect("journal reads");
        assert_eq!(entries.len(), 1, "exactly the accepted delta is journaled");
        assert_eq!(entries[0].applied_index, 0);
        assert_eq!(entries[0].text, delta.to_text());

        client.shutdown().expect("shutdown");
    });
    handle.join().expect("accept loop exits");
    std::fs::remove_file(&journal_path).ok();
}

/// A zero batch deadline turns every admitted query into a structured
/// [`Rejection::DeadlineExceeded`]; a generous one changes nothing.
#[test]
fn batch_deadlines_cut_queries_with_structured_rejections() {
    let (_, _, index) = fixture();
    let battery = queries(index.num_nodes());

    let path = unix_path("deadline-zero.sock");
    let mut strict = config(path);
    strict.batch_deadline = Some(Duration::ZERO);
    let sharded = ShardedIndex::from_index(index.clone(), 2).expect("shardable");
    let handle = Server::start(Arc::new(sharded), None, strict, || "{}".into()).expect("server");
    let before = imm_serve::metrics::DEADLINE_EXCEEDED.value();
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
    let answers = client.batch(&battery).expect("the batch itself is answered");
    assert_eq!(answers.len(), battery.len());
    for (i, answer) in answers.iter().enumerate() {
        match answer {
            Err(Rejection::DeadlineExceeded { deadline_ms, .. }) => assert_eq!(*deadline_ms, 0),
            other => panic!("query {i} must be cut by the zero deadline, got {other:?}"),
        }
    }
    assert!(
        imm_serve::metrics::DEADLINE_EXCEEDED.value() >= before + battery.len() as u64,
        "every cut query must be counted"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");

    let path = unix_path("deadline-lax.sock");
    let mut lax = config(path);
    lax.batch_deadline = Some(Duration::from_secs(30));
    let sharded = ShardedIndex::from_index(index.clone(), 2).expect("shardable");
    let handle = Server::start(Arc::new(sharded), None, lax, || "{}".into()).expect("server");
    let local = ShardedEngine::with_options(
        Arc::new(ShardedIndex::from_index(index, 2).expect("shardable")),
        2,
        64,
    );
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
    let answers = client.batch(&battery).expect("batch");
    for (i, (got, want)) in answers.iter().zip(local.execute_batch(&battery, 2).iter()).enumerate()
    {
        assert_eq!(
            got.as_ref().expect("admitted"),
            want,
            "query {i} diverged under a generous deadline"
        );
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

//! Protocol robustness under hostile and broken inputs.
//!
//! The decoder's contract for a long-lived daemon: every malformed
//! frame — wrong magic, alien version, hostile length prefix, truncation
//! at *any* byte, flipped bytes, garbage counts — earns a structured
//! [`ProtocolError`], never a panic, a hang, or an allocation larger
//! than the frame that arrived. These tests drive `read_frame` and the
//! request/response decoders directly over in-memory byte streams, so
//! every corruption site is exact and deterministic.

use imm_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameRead, ProtocolError, Request, Response, FRAME_HEADER_LEN, FRAME_MAGIC,
    MAX_AUDIENCE_CAPACITY, PROTOCOL_VERSION,
};
use imm_serve::{DeltaOutcome, Rejection, ServeError, ServerInfo};
use imm_service::{Query, QueryResponse};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;

const MAX: usize = 1 << 20;

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, payload).expect("in-memory write");
    wire
}

fn read_one(bytes: &[u8]) -> Result<FrameRead, ProtocolError> {
    read_frame(&mut Cursor::new(bytes), MAX)
}

// ---------------------------------------------------------------------------
// Frame header abuse.

/// A length prefix of `u32::MAX` must be rejected *before* any payload
/// buffer is allocated — a hostile 9-byte header cannot cost 4 GiB.
#[test]
fn hostile_length_prefix_is_rejected_before_allocation() {
    let mut header = Vec::new();
    header.extend_from_slice(&FRAME_MAGIC);
    header.push(PROTOCOL_VERSION);
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    match read_one(&header) {
        Err(ProtocolError::FrameTooLarge { len, max }) => {
            assert_eq!(len, u32::MAX as u64);
            assert_eq!(max, MAX as u64);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // One past the cap is the exact boundary.
    let mut boundary = Vec::new();
    boundary.extend_from_slice(&FRAME_MAGIC);
    boundary.push(PROTOCOL_VERSION);
    boundary.extend_from_slice(&((MAX as u32) + 1).to_le_bytes());
    assert!(matches!(read_one(&boundary), Err(ProtocolError::FrameTooLarge { .. })));
}

#[test]
fn bad_magic_is_a_structured_error() {
    let mut wire = frame_bytes(&encode_request(&Request::Ping));
    wire[0] = b'X';
    match read_one(&wire) {
        Err(ProtocolError::BadMagic { found }) => assert_eq!(found[0], b'X'),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_mismatch_names_both_versions() {
    let mut wire = frame_bytes(&encode_request(&Request::Ping));
    wire[4] = PROTOCOL_VERSION + 9;
    match read_one(&wire) {
        Err(ProtocolError::VersionMismatch { ours, theirs }) => {
            assert_eq!(ours, PROTOCOL_VERSION);
            assert_eq!(theirs, PROTOCOL_VERSION + 9);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

/// A frame cut off at **every** possible prefix length: empty input is a
/// clean EOF, a partial header or payload is `Truncated` — never a hang
/// and never a successful read.
#[test]
fn truncation_at_every_prefix_is_eof_or_truncated() {
    let wire =
        frame_bytes(&encode_request(&Request::ApplyDelta { text: "+ 0 1 0.5\n- 2 3\n".into() }));
    for cut in 0..wire.len() {
        match read_one(&wire[..cut]) {
            Ok(FrameRead::Eof) => assert_eq!(cut, 0, "EOF only before the first byte"),
            Err(ProtocolError::Truncated { .. }) => assert!(cut > 0),
            other => panic!("prefix of {cut} bytes: expected Eof/Truncated, got {other:?}"),
        }
    }
    // The whole frame still reads back.
    assert!(matches!(read_one(&wire), Ok(FrameRead::Frame(_))));
}

/// A half-written frame over a *timing-out* stream must surface as
/// `Truncated`, not hang: the reader folds a mid-frame timeout into the
/// same structured error as a mid-frame EOF.
#[test]
fn half_written_frame_times_out_into_truncated() {
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let address = listener.local_addr().expect("addr");
    let writer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(address).expect("connect");
        let wire = frame_bytes(&encode_request(&Request::Ping));
        // Header plus one payload byte, then stall with the socket open.
        stream.write_all(&wire[..FRAME_HEADER_LEN.min(wire.len())]).expect("partial write");
        std::thread::sleep(Duration::from_millis(300));
        drop(stream);
    });
    let (mut conn, _) = listener.accept().expect("accept");
    conn.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
    match read_frame(&mut conn, MAX) {
        Err(ProtocolError::Truncated { .. }) => {}
        other => panic!("expected Truncated on a stalled frame, got {other:?}"),
    }
    writer.join().expect("writer thread");
}

/// An idle connection (timeout before the first byte) is `Idle`, not an
/// error — the server's housekeeping window depends on the distinction.
#[test]
fn timeout_before_first_byte_is_idle() {
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let address = listener.local_addr().expect("addr");
    let client = TcpStream::connect(address).expect("connect");
    let (mut conn, _) = listener.accept().expect("accept");
    conn.set_read_timeout(Some(Duration::from_millis(30))).expect("timeout");
    assert!(matches!(read_frame(&mut conn, MAX), Ok(FrameRead::Idle)));
    drop(client);
}

// ---------------------------------------------------------------------------
// Payload abuse.

#[test]
fn unknown_opcodes_are_structured_errors() {
    for opcode in [0x00u8, 0x07, 0x42, 0xFF] {
        match decode_request(&[opcode]) {
            Err(ProtocolError::UnknownTag { tag, .. }) => assert_eq!(tag, opcode),
            other => panic!("request opcode {opcode:#x}: expected UnknownTag, got {other:?}"),
        }
    }
    for opcode in [0x00u8, 0x42, 0x80, 0xFF] {
        assert!(
            matches!(decode_response(&[opcode]), Err(ProtocolError::UnknownTag { .. })),
            "response opcode {opcode:#x} must be rejected"
        );
    }
    assert!(matches!(decode_request(&[]), Err(ProtocolError::Truncated { .. })));
    assert!(matches!(decode_response(&[]), Err(ProtocolError::Truncated { .. })));
}

/// A garbage element count can never drive an allocation past the frame
/// it arrived in: a batch claiming 4 billion queries inside a 20-byte
/// payload is malformed, instantly.
#[test]
fn oversized_member_counts_are_malformed_not_allocated() {
    // Opcode 0x02 (batch) + u32::MAX query count, nothing behind it.
    let mut payload = vec![0x02u8];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    match decode_request(&payload) {
        Err(ProtocolError::Malformed { .. }) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }

    // An audience bitmap claiming a capacity beyond the sanity cap.
    let query = Query::audience_top_k(2, imm_rrr::BitSet::from_iter_with_capacity(8, [1usize]));
    let mut encoded = encode_request(&Request::Batch(vec![query]));
    let cap_at =
        encoded.windows(8).position(|w| w == 8u64.to_le_bytes()).expect("capacity field present");
    encoded[cap_at..cap_at + 8].copy_from_slice(&(MAX_AUDIENCE_CAPACITY + 1).to_le_bytes());
    match decode_request(&encoded) {
        Err(ProtocolError::Malformed { .. } | ProtocolError::Truncated { .. }) => {}
        other => panic!("expected a structured rejection, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut payload = encode_request(&Request::Ping);
    payload.push(0xAB);
    assert!(matches!(decode_request(&payload), Err(ProtocolError::Malformed { .. })));

    let mut payload = encode_response(&Response::Pong);
    payload.extend_from_slice(b"junk");
    assert!(matches!(decode_response(&payload), Err(ProtocolError::Malformed { .. })));
}

// ---------------------------------------------------------------------------
// Exhaustive flips and random garbage (proptest).
//
// The vendored proptest subset has no `prop_oneof!`/regex strategies, so
// messages are generated from a seed through `SmallRng` — deterministic
// per case, covering every variant including NaN-bit f64 payloads.

fn seeded_query(rng: &mut SmallRng) -> Query {
    match rng.gen_range(0u8..4) {
        0 => Query::top_k(rng.gen_range(1usize..20)),
        1 => Query::Spread {
            seeds: (0..rng.gen_range(1usize..5)).map(|_| rng.gen_range(0u32..200)).collect(),
        },
        2 => Query::Marginal {
            seeds: (0..rng.gen_range(1usize..4)).map(|_| rng.gen_range(0u32..200)).collect(),
            candidate: rng.gen_range(0u32..200),
        },
        _ => {
            let members: Vec<usize> =
                (0..rng.gen_range(1usize..10)).map(|_| rng.gen_range(0usize..100)).collect();
            Query::audience_top_k(
                rng.gen_range(1usize..8),
                imm_rrr::BitSet::from_iter_with_capacity(100, members),
            )
        }
    }
}

fn seeded_request(seed: u64) -> Request {
    let mut rng = SmallRng::seed_from_u64(seed);
    match rng.gen_range(0u8..6) {
        0 => Request::Ping,
        1 => Request::Metrics,
        2 => Request::Info,
        3 => Request::Shutdown,
        4 => Request::ApplyDelta {
            text: (0..rng.gen_range(0usize..40))
                .map(|_| rng.gen_range(b' '..b'~') as char)
                .collect(),
        },
        _ => {
            Request::Batch((0..rng.gen_range(0usize..6)).map(|_| seeded_query(&mut rng)).collect())
        }
    }
}

/// An arbitrary f64 by bits: hits infinities, NaN payloads, subnormals.
fn seeded_f64(rng: &mut SmallRng) -> f64 {
    f64::from_bits(rng.gen::<u64>())
}

fn seeded_outcome(rng: &mut SmallRng) -> Result<QueryResponse, Rejection> {
    match rng.gen_range(0u8..5) {
        0 => Ok(QueryResponse::TopK {
            seeds: (0..rng.gen_range(0usize..5)).map(|_| rng.gen_range(0u32..100)).collect(),
            coverage_fraction: seeded_f64(rng),
            estimated_influence: seeded_f64(rng),
        }),
        1 => Ok(QueryResponse::Spread {
            coverage_fraction: seeded_f64(rng),
            estimate: seeded_f64(rng),
        }),
        2 => Ok(QueryResponse::Marginal { gain_fraction: seeded_f64(rng), gain: seeded_f64(rng) }),
        3 => Err(Rejection::OverBudget { estimated_cost: rng.gen(), budget: rng.gen() }),
        _ => Err(Rejection::InvalidVertex { vertex: rng.gen(), num_nodes: rng.gen() }),
    }
}

fn seeded_text(rng: &mut SmallRng, max: usize) -> String {
    (0..rng.gen_range(0usize..max)).map(|_| rng.gen_range(b' '..b'~') as char).collect()
}

fn seeded_response(seed: u64) -> Response {
    let mut rng = SmallRng::seed_from_u64(seed);
    match rng.gen_range(0u8..8) {
        0 => Response::Pong,
        1 => Response::ShuttingDown,
        2 => Response::MetricsJson(seeded_text(&mut rng, 60)),
        3 => Response::Info(ServerInfo {
            label: seeded_text(&mut rng, 20),
            theta: rng.gen(),
            nodes: rng.gen(),
            shards: rng.gen_range(1u32..8),
            workers: rng.gen_range(0u32..8),
            rollouts: rng.gen(),
        }),
        4 => Response::DeltaApplied(DeltaOutcome {
            total_sets: rng.gen(),
            resampled_sets: rng.gen(),
            inserted_edges: rng.gen(),
            deleted_edges: rng.gen(),
            reweighted_edges: rng.gen(),
            edges_after: rng.gen(),
        }),
        5 => Response::Error(match rng.gen_range(0u8..4) {
            0 => ServeError::QueueFull { inflight: rng.gen(), limit: rng.gen() },
            1 => ServeError::NotDynamic,
            2 => ServeError::Delta { detail: seeded_text(&mut rng, 30) },
            _ => ServeError::BadRequest { detail: seeded_text(&mut rng, 30) },
        }),
        _ => Response::Batch(
            (0..rng.gen_range(0usize..6)).map(|_| seeded_outcome(&mut rng)).collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every request survives an encode/decode round trip exactly (the
    /// re-encode compares the wire bytes, so audience bitmaps and all).
    #[test]
    fn request_round_trip(seed in any::<u64>()) {
        let request = seeded_request(seed);
        let decoded = decode_request(&encode_request(&request)).expect("round trip");
        prop_assert_eq!(encode_request(&decoded), encode_request(&request));
    }

    /// Every response survives a round trip with f64 *bit* exactness —
    /// comparing re-encoded wire bytes keeps NaN payloads honest, where
    /// `==` on the f64 fields would reject a faithful NaN round trip.
    #[test]
    fn response_round_trip(seed in any::<u64>()) {
        let response = seeded_response(seed);
        let decoded = decode_response(&encode_response(&response)).expect("round trip");
        prop_assert_eq!(encode_response(&decoded), encode_response(&response));
    }

    /// Flip any byte of a valid encoded request: the decoder must return
    /// (a structured error or a different request) without panicking or
    /// over-reading. Sweeping every position per case makes the flip
    /// coverage exhaustive, not sampled.
    #[test]
    fn flipped_bytes_never_panic_the_request_decoder(seed in any::<u64>(), bits in 1u8..=255) {
        let payload = encode_request(&seeded_request(seed));
        for at in 0..payload.len() {
            let mut corrupt = payload.clone();
            corrupt[at] ^= bits;
            let _ = decode_request(&corrupt); // must return, not panic
        }
    }

    /// Same for the response decoder — a hostile server cannot panic a
    /// client.
    #[test]
    fn flipped_bytes_never_panic_the_response_decoder(seed in any::<u64>(), bits in 1u8..=255) {
        let payload = encode_response(&seeded_response(seed));
        for at in 0..payload.len() {
            let mut corrupt = payload.clone();
            corrupt[at] ^= bits;
            let _ = decode_response(&corrupt);
        }
    }

    /// Pure random garbage decodes to a structured error (or, rarely, a
    /// valid message) — never a panic, never an oversized allocation.
    #[test]
    fn random_garbage_never_panics(seed in any::<u64>(), len in 0usize..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = read_one(&bytes);
    }
}

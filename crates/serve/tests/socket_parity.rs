//! The daemon's acceptance property: a query answered over the socket is
//! **byte-identical** to the same query answered by an in-process
//! [`ShardedEngine`] over the same index — floating-point estimates
//! included, compared with `==` — across shard counts, over unix and TCP
//! transports, and after rolling `apply_delta` rollouts. Plus the
//! admission-control contract: over-budget queries are rejected with
//! structured costs while their cheap neighbours keep serving
//! byte-identically, and a full in-flight queue sheds whole requests.

use imm_diffusion::DiffusionModel;
use imm_graph::{generators, CsrGraph, EdgeWeights, GraphDelta};
use imm_rrr::{BitSet, NodeId};
use imm_serve::{
    Client, ClientError, CostModel, Listen, Rejection, ServeError, Server, ServerConfig,
};
use imm_service::{Query, SampleSpec, SketchIndex};
use imm_shard::{ShardedEngine, ShardedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const THETA: usize = 150;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn fixture() -> (CsrGraph, EdgeWeights, SketchIndex) {
    let mut rng = SmallRng::seed_from_u64(0xA5);
    let graph = CsrGraph::from_edge_list(&generators::social_network(120, 5, 0.3, &mut rng));
    let weights = EdgeWeights::constant(&graph, 0.2);
    let spec = SampleSpec::new(DiffusionModel::IndependentCascade, 0x5EED);
    let index =
        SketchIndex::sample(&graph, &weights, spec, THETA, 2, "socket-parity").expect("sample");
    (graph, weights, index)
}

/// The full query vocabulary: plain and audience-masked Top-K, spreads,
/// marginals — all over seeded random vertices inside the vertex space.
fn query_battery(num_nodes: usize, probe_seed: u64) -> Vec<Query> {
    let mut probe = SmallRng::seed_from_u64(probe_seed);
    let n = num_nodes as u32;
    let mut queries: Vec<Query> = [1usize, 8, 3, 15].into_iter().map(Query::top_k).collect();
    for _ in 0..3 {
        let seeds: Vec<NodeId> =
            (0..probe.gen_range(1..4)).map(|_| probe.gen_range(0..n)).collect();
        queries.push(Query::Spread { seeds });
    }
    for _ in 0..3 {
        let seeds: Vec<NodeId> =
            (0..probe.gen_range(1..3)).map(|_| probe.gen_range(0..n)).collect();
        queries.push(Query::Marginal { seeds, candidate: probe.gen_range(0..n) });
    }
    for _ in 0..2 {
        let audience = BitSet::from_iter_with_capacity(
            num_nodes,
            (0..probe.gen_range(1..20)).map(|_| probe.gen_range(0..num_nodes)),
        );
        queries.push(Query::audience_top_k(probe.gen_range(1..6), audience));
    }
    queries
}

fn unix_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("imm_serve_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

fn start(index: &SketchIndex, shards: usize, config: ServerConfig) -> imm_serve::ServerHandle {
    let sharded = ShardedIndex::from_index(index.clone(), shards).expect("shardable");
    Server::start(Arc::new(sharded), None, config, || "{}".into()).expect("server starts")
}

/// Remote answers must equal the in-process engine's with `==` — that
/// comparison covers every f64 in the responses.
fn assert_remote_matches_local(
    client: &mut Client,
    local: &ShardedEngine,
    queries: &[Query],
    context: &str,
) {
    let expected = local.execute_batch(queries, 2);
    let remote = client.batch(queries).expect("batch call");
    assert_eq!(remote.len(), expected.len(), "{context}: answer count");
    for (i, (got, want)) in remote.iter().zip(expected.iter()).enumerate() {
        match got {
            Ok(response) => {
                assert_eq!(response, want, "{context}: query {i} diverged over the socket")
            }
            Err(rejection) => panic!("{context}: query {i} unexpectedly rejected: {rejection}"),
        }
    }
}

/// Shard counts 1/2/4 over a unix socket: every response byte-identical
/// to the in-process engine, before and after a rolling `apply_delta`.
#[test]
fn unix_socket_parity_across_shard_counts_and_rollouts() {
    let (graph, weights, index) = fixture();
    let delta = {
        let (del_src, del_dst) = graph.edges().next().expect("graph has edges");
        GraphDelta::new().insert(3, 77, 0.8).insert(110, 9, 0.6).delete(del_src, del_dst)
    };

    for shards in SHARD_COUNTS {
        let context = format!("unix, {shards} shards");
        let path = unix_path(&format!("parity-{shards}.sock"));
        let sharded = ShardedIndex::from_index(index.clone(), shards).expect("shardable");
        let mut config = ServerConfig::new(Listen::Unix(path.clone()));
        config.threads = 2;
        config.tick = Duration::from_millis(10);
        let handle = Server::start(
            Arc::new(sharded),
            Some((graph.clone(), weights.clone())),
            config,
            || "{}".into(),
        )
        .expect("server starts");

        let mut client =
            Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
        client.ping().expect("ping");
        let info = client.info().expect("info");
        assert_eq!(info.shards as usize, shards, "{context}: shard count over the wire");
        assert_eq!(info.nodes as usize, graph.num_nodes());
        assert_eq!(info.rollouts, 0);

        // Local mirror of the same generation.
        let mut local = ShardedEngine::with_options(
            Arc::new(ShardedIndex::from_index(index.clone(), shards).expect("shardable")),
            2,
            64,
        );
        let queries = query_battery(graph.num_nodes(), 0xBEE5 ^ shards as u64);
        assert_remote_matches_local(&mut client, &local, &queries, &context);

        // Rolling rollout over RPC; mirror it in process and re-compare.
        let outcome = client.apply_delta(&delta.to_text()).expect("rollout");
        let (_, _, local_stats) =
            local.apply_delta(&graph, &weights, &delta).expect("local refresh");
        assert_eq!(outcome.total_sets as usize, local_stats.total_sets, "{context}");
        assert_eq!(outcome.resampled_sets as usize, local_stats.resampled_sets, "{context}");
        assert_eq!(outcome.edges_after as usize, local_stats.num_edges_after, "{context}");
        assert_eq!(client.info().expect("info").rollouts, 1, "{context}");
        assert_remote_matches_local(
            &mut client,
            &local,
            &queries,
            &format!("{context}, post-rollout"),
        );

        // A connection opened *after* the rollout sees the same answers.
        let mut late =
            Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
        assert_remote_matches_local(
            &mut late,
            &local,
            &queries,
            &format!("{context}, post-rollout, fresh connection"),
        );

        client.shutdown().expect("shutdown");
        handle.join().expect("accept loop exits");
        assert!(!path.exists(), "{context}: socket file removed on shutdown");
    }
}

/// The same parity over TCP: transport must not affect a single byte.
#[test]
fn tcp_parity_matches_in_process_engine() {
    let (graph, _weights, index) = fixture();
    let mut config = ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()));
    config.threads = 2;
    config.tick = Duration::from_millis(10);
    let handle = start(&index, 2, config);
    match handle.address() {
        Listen::Tcp(addr) => {
            assert!(!addr.ends_with(":0"), "port 0 must be resolved, got {addr}")
        }
        other => panic!("expected a TCP address, got {other}"),
    }

    let local = ShardedEngine::with_options(
        Arc::new(ShardedIndex::from_index(index.clone(), 2).expect("shardable")),
        2,
        64,
    );
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
    let queries = query_battery(graph.num_nodes(), 0x7CB);
    assert_remote_matches_local(&mut client, &local, &queries, "tcp, 2 shards");
    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

/// Admission control: a budget between the cheap and expensive query
/// costs rejects exactly the expensive ones — with the estimate and the
/// budget in the rejection — while the cheap ones keep serving
/// byte-identically. Invalid vertices are structured rejections too (the
/// in-process engine would panic; the daemon must not).
#[test]
fn over_budget_queries_are_rejected_while_cheap_ones_serve() {
    let (graph, _weights, index) = fixture();
    let sharded = ShardedIndex::from_index(index.clone(), 2).expect("shardable");
    let cost_model = CostModel::from_index(&sharded);

    let cheap = Query::Spread { seeds: vec![0] };
    let expensive = Query::top_k(15);
    let cheap_cost = cost_model.cost(&cheap).expect("priceable");
    let expensive_cost = cost_model.cost(&expensive).expect("priceable");
    assert!(
        cheap_cost < expensive_cost,
        "fixture must separate the costs ({cheap_cost} vs {expensive_cost})"
    );
    let budget = (cheap_cost + expensive_cost) / 2;

    let mut config = ServerConfig::new(Listen::Unix(unix_path("admission.sock")));
    config.threads = 2;
    config.budget = Some(budget);
    config.tick = Duration::from_millis(10);
    let handle = start(&index, 2, config);
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");

    let out_of_range = graph.num_nodes() as u32 + 7;
    let batch = vec![cheap.clone(), expensive.clone(), Query::Spread { seeds: vec![out_of_range] }];
    let outcomes = client.batch(&batch).expect("batch call");

    // Slot 0: cheap, admitted, byte-identical to the local engine.
    let local = ShardedEngine::with_options(Arc::new(sharded), 2, 64);
    let expected = local.execute_batch(std::slice::from_ref(&cheap), 1);
    assert_eq!(outcomes[0].as_ref().expect("cheap query admitted"), &expected[0]);

    // Slot 1: over budget, with the exact estimate echoed back.
    match &outcomes[1] {
        Err(Rejection::OverBudget { estimated_cost, budget: b }) => {
            assert_eq!(*estimated_cost, expensive_cost);
            assert_eq!(*b, budget);
        }
        other => panic!("expected an over-budget rejection, got {other:?}"),
    }

    // Slot 2: invalid vertex, named in the rejection.
    match &outcomes[2] {
        Err(Rejection::InvalidVertex { vertex, num_nodes }) => {
            assert_eq!(*vertex, out_of_range);
            assert_eq!(*num_nodes, graph.num_nodes() as u64);
        }
        other => panic!("expected an invalid-vertex rejection, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

/// A zero-size in-flight queue sheds every batch with a structured
/// queue-full error — and the control verbs (ping, info, shutdown) keep
/// working, so an overloaded daemon stays operable.
#[test]
fn full_inflight_queue_sheds_batches_with_a_structured_error() {
    let (_graph, _weights, index) = fixture();
    let mut config = ServerConfig::new(Listen::Unix(unix_path("queue-full.sock")));
    config.threads = 2;
    config.max_inflight = 0;
    config.tick = Duration::from_millis(10);
    let handle = start(&index, 1, config);
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");

    client.ping().expect("control verbs still answer");
    match client.batch(&[Query::top_k(2)]) {
        Err(ClientError::Server(ServeError::QueueFull { limit, .. })) => assert_eq!(limit, 0),
        other => panic!("expected a queue-full error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

/// A static daemon (no graph/weights pair) answers rollout requests with
/// `not-dynamic`, and garbage delta text is a structured delta error —
/// both leave the daemon serving.
#[test]
fn static_daemon_rejects_rollouts_structurally() {
    let (graph, weights, index) = fixture();
    let mut config = ServerConfig::new(Listen::Unix(unix_path("static.sock")));
    config.threads = 2;
    config.tick = Duration::from_millis(10);
    let handle = start(&index, 2, config);
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");

    match client.apply_delta("+ 0 1 0.5\n") {
        Err(ClientError::Server(ServeError::NotDynamic)) => {}
        other => panic!("expected not-dynamic, got {other:?}"),
    }
    client.ping().expect("still serving after the refusal");
    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");

    // A dynamic daemon rejects garbage delta text without rolling over.
    let mut config = ServerConfig::new(Listen::Unix(unix_path("bad-delta.sock")));
    config.threads = 2;
    config.tick = Duration::from_millis(10);
    let sharded = ShardedIndex::from_index(index.clone(), 2).expect("shardable");
    let handle = Server::start(Arc::new(sharded), Some((graph, weights)), config, || "{}".into())
        .expect("server starts");
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
    match client.apply_delta("this is not a delta\n") {
        Err(ClientError::Server(ServeError::Delta { .. })) => {}
        other => panic!("expected a delta error, got {other:?}"),
    }
    assert_eq!(client.info().expect("info").rollouts, 0, "no rollout happened");
    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

/// The metrics verb returns whatever the provider renders — the CLI
/// wires the workspace registry here; the wire just carries it.
#[test]
fn metrics_verb_round_trips_the_provider_payload() {
    let (_graph, _weights, index) = fixture();
    let mut config = ServerConfig::new(Listen::Unix(unix_path("metrics.sock")));
    config.threads = 1;
    config.tick = Duration::from_millis(10);
    let sharded = ShardedIndex::from_index(index.clone(), 1).expect("shardable");
    let handle =
        Server::start(Arc::new(sharded), None, config, || r#"{"registry":{"metrics":[]}}"#.into())
            .expect("server starts");
    let mut client =
        Client::connect_with_retry(handle.address(), Duration::from_secs(5)).expect("connect");
    assert_eq!(client.metrics_json().expect("metrics"), r#"{"registry":{"metrics":[]}}"#);
    client.shutdown().expect("shutdown");
    handle.join().expect("accept loop exits");
}

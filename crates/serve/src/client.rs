//! Blocking client for the serving daemon.
//!
//! One [`Client`] owns one connection and runs a strict
//! request/response exchange per call. The CLI `client` subcommand, the
//! `query_storm` bench, and the socket parity suite all speak through
//! this type, so its decode path is the same defensive
//! [`protocol`] decoder the server uses — a hostile or
//! broken server cannot make a client panic, hang, or over-allocate.

use crate::protocol::{
    self, DeltaOutcome, FrameRead, ProtocolError, Rejection, Request, Response, ServeError,
    ServerInfo, DEFAULT_MAX_FRAME_LEN,
};
use crate::server::{Listen, Stream};
use imm_service::{Query, QueryResponse};
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

/// Everything a call can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the daemon.
    Connect(io::Error),
    /// Transport or framing failure mid-exchange.
    Protocol(ProtocolError),
    /// The daemon closed the connection instead of answering.
    Closed,
    /// The daemon reported a request-level error.
    Server(ServeError),
    /// The daemon answered with a verb that does not match the request.
    Unexpected {
        /// What the call was waiting for.
        expected: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "could not connect to the daemon: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Closed => write!(f, "the daemon closed the connection"),
            ClientError::Server(e) => write!(f, "the daemon refused the request: {e}"),
            ClientError::Unexpected { expected } => {
                write!(f, "the daemon answered with the wrong verb (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A blocking connection to a serving daemon.
pub struct Client {
    stream: Stream,
    max_frame_len: usize,
}

impl Client {
    /// Connect once.
    pub fn connect(address: &Listen) -> Result<Self, ClientError> {
        let stream = Stream::connect(address).map_err(ClientError::Connect)?;
        Ok(Client { stream, max_frame_len: DEFAULT_MAX_FRAME_LEN })
    }

    /// Connect, retrying for up to `wait` (10 ms backoff) — the CI
    /// smoke's readiness gate for a daemon that is still binding its
    /// socket.
    pub fn connect_with_retry(address: &Listen, wait: Duration) -> Result<Self, ClientError> {
        let deadline = Instant::now() + wait;
        loop {
            match Self::connect(address) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Cap on one response frame's payload (defaults to
    /// [`DEFAULT_MAX_FRAME_LEN`]).
    pub fn set_max_frame_len(&mut self, max: usize) {
        self.max_frame_len = max;
    }

    /// One raw request/response exchange.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(request))
            .map_err(|e| ClientError::Protocol(ProtocolError::Io(e)))?;
        match protocol::read_frame(&mut self.stream, self.max_frame_len)? {
            FrameRead::Frame(payload) => Ok(protocol::decode_response(&payload)?),
            FrameRead::Eof | FrameRead::Idle => Err(ClientError::Closed),
        }
    }

    /// Call, surfacing a server-reported error as [`ClientError::Server`].
    fn checked(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected { expected: "pong" }),
        }
    }

    /// Serve a batch of queries; each answer slot is the engine's
    /// byte-identical response or a structured admission rejection.
    pub fn batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<Result<QueryResponse, Rejection>>, ClientError> {
        match self.checked(&Request::Batch(queries.to_vec()))? {
            Response::Batch(outcomes) => Ok(outcomes),
            _ => Err(ClientError::Unexpected { expected: "batch answers" }),
        }
    }

    /// The daemon's live metrics registry as JSON.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.checked(&Request::Metrics)? {
            Response::MetricsJson(json) => Ok(json),
            _ => Err(ClientError::Unexpected { expected: "metrics json" }),
        }
    }

    /// Server identity and shape.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        match self.checked(&Request::Info)? {
            Response::Info(info) => Ok(info),
            _ => Err(ClientError::Unexpected { expected: "server info" }),
        }
    }

    /// Apply a delta (`update-index` text format) through a graceful
    /// rollout.
    pub fn apply_delta(&mut self, text: &str) -> Result<DeltaOutcome, ClientError> {
        match self.checked(&Request::ApplyDelta { text: text.into() })? {
            Response::DeltaApplied(outcome) => Ok(outcome),
            _ => Err(ClientError::Unexpected { expected: "delta outcome" }),
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected { expected: "shutdown ack" }),
        }
    }
}

//! Blocking client for the serving daemon, plus the retrying client the
//! fault-tolerant callers use.
//!
//! One [`Client`] owns one connection and runs a strict
//! request/response exchange per call. The CLI `client` subcommand, the
//! `query_storm` bench, and the socket parity suite all speak through
//! this type, so its decode path is the same defensive
//! [`protocol`] decoder the server uses — a hostile or
//! broken server cannot make a client panic, hang, or over-allocate.
//!
//! # Failure taxonomy
//!
//! Transport failures are *typed*, because retry policy differs by kind:
//!
//! * [`ClientError::ConnectionLost`] — the connection died mid-exchange
//!   (reset, broken pipe, EOF before the reply, mid-frame truncation).
//!   The request may or may not have executed; only idempotent requests
//!   are safe to retry.
//! * [`ClientError::TimedOut`] — the configured request timeout expired
//!   with no reply. Same retry caveat.
//! * [`ClientError::Server`] — the daemon answered with a structured
//!   error; [`ServeError::Degraded`] and [`ServeError::QueueFull`] are
//!   explicitly retryable, the rest are not.
//!
//! [`RetryClient`] encodes that policy: capped exponential backoff with
//! deterministic jitter, a lifetime retry budget, reconnection on lost
//! connections (so a daemon restart is survivable), and retries only
//! for idempotent verbs (`ping`, `batch`, `metrics`, `info` — never
//! `apply_delta` or `shutdown`).

use crate::metrics as smetrics;
use crate::protocol::{
    self, DeltaOutcome, FrameRead, ProtocolError, Rejection, Request, Response, ServeError,
    ServerInfo, DEFAULT_MAX_FRAME_LEN,
};
use crate::server::{Listen, Stream};
use imm_service::{Query, QueryResponse};
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

/// Everything a call can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the daemon.
    Connect(io::Error),
    /// Transport or framing failure mid-exchange.
    Protocol(ProtocolError),
    /// The daemon closed the connection instead of answering.
    Closed,
    /// The connection died mid-exchange (reset, broken pipe, EOF before
    /// the reply): the request may or may not have executed server-side,
    /// so only idempotent requests are safe to retry.
    ConnectionLost {
        /// What the transport reported.
        detail: String,
    },
    /// The request timeout expired with no reply.
    TimedOut {
        /// The timeout that expired.
        waited: Duration,
    },
    /// The daemon reported a request-level error.
    Server(ServeError),
    /// The daemon answered with a verb that does not match the request.
    Unexpected {
        /// What the call was waiting for.
        expected: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "could not connect to the daemon: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Closed => write!(f, "the daemon closed the connection"),
            ClientError::ConnectionLost { detail } => {
                write!(f, "connection to the daemon lost mid-exchange: {detail}")
            }
            ClientError::TimedOut { waited } => {
                write!(f, "no reply from the daemon within {} ms", waited.as_millis())
            }
            ClientError::Server(e) => write!(f, "the daemon refused the request: {e}"),
            ClientError::Unexpected { expected } => {
                write!(f, "the daemon answered with the wrong verb (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        // Mid-exchange transport deaths and truncation are a lost
        // connection (typed, so retry policy can reason about them);
        // grammar violations stay protocol errors.
        match e {
            ProtocolError::Io(ref io_err) if is_connection_loss(io_err.kind()) => {
                ClientError::ConnectionLost { detail: e.to_string() }
            }
            ProtocolError::Truncated { .. } => {
                ClientError::ConnectionLost { detail: e.to_string() }
            }
            other => ClientError::Protocol(other),
        }
    }
}

/// IO error kinds that mean the peer (or the path to it) is gone, as
/// opposed to a local or semantic failure.
fn is_connection_loss(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
    )
}

/// A blocking connection to a serving daemon.
pub struct Client {
    /// Under an installed fault plan the wrapper injects socket faults
    /// client-side too; a transparent no-op otherwise.
    stream: imm_fault::FaultyIo<Stream>,
    max_frame_len: usize,
    request_timeout: Option<Duration>,
}

impl Client {
    /// Connect once.
    pub fn connect(address: &Listen) -> Result<Self, ClientError> {
        let stream = Stream::connect(address).map_err(ClientError::Connect)?;
        Ok(Client {
            stream: imm_fault::FaultyIo::new(stream, "client.conn"),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            request_timeout: None,
        })
    }

    /// Connect with a bound on the dial itself (TCP; unix sockets
    /// connect or fail immediately).
    pub fn connect_timeout(address: &Listen, timeout: Duration) -> Result<Self, ClientError> {
        let stream = Stream::connect_timeout(address, timeout).map_err(ClientError::Connect)?;
        Ok(Client {
            stream: imm_fault::FaultyIo::new(stream, "client.conn"),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            request_timeout: None,
        })
    }

    /// Connect, retrying for up to `wait` (10 ms backoff) — the CI
    /// smoke's readiness gate for a daemon that is still binding its
    /// socket.
    pub fn connect_with_retry(address: &Listen, wait: Duration) -> Result<Self, ClientError> {
        let deadline = Instant::now() + wait;
        loop {
            match Self::connect(address) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Cap on one response frame's payload (defaults to
    /// [`DEFAULT_MAX_FRAME_LEN`]).
    pub fn set_max_frame_len(&mut self, max: usize) {
        self.max_frame_len = max;
    }

    /// Bound every subsequent exchange: a reply that takes longer than
    /// `timeout` fails with [`ClientError::TimedOut`] instead of
    /// blocking forever. Also bounds socket writes. `None` restores
    /// fully blocking exchanges.
    pub fn set_request_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        let stream = self.stream.get_ref();
        stream
            .set_read_timeout(timeout)
            .and_then(|()| stream.set_write_timeout(timeout))
            .map_err(|e| ClientError::Protocol(ProtocolError::Io(e)))?;
        self.request_timeout = timeout;
        Ok(())
    }

    /// One raw request/response exchange.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(request)).map_err(
            |e| {
                if is_connection_loss(e.kind()) {
                    ClientError::ConnectionLost { detail: e.to_string() }
                } else {
                    ClientError::Protocol(ProtocolError::Io(e))
                }
            },
        )?;
        match protocol::read_frame(&mut self.stream, self.max_frame_len) {
            Ok(FrameRead::Frame(payload)) => Ok(protocol::decode_response(&payload)?),
            // EOF after the request went out: the daemon (or the path to
            // it) died with the exchange open.
            Ok(FrameRead::Eof) => Err(ClientError::ConnectionLost {
                detail: "the daemon closed the connection before replying".into(),
            }),
            // A read timeout with no frame started: the request timeout
            // expired (only reachable when one is set).
            Ok(FrameRead::Idle) => Err(ClientError::TimedOut {
                waited: self.request_timeout.unwrap_or(Duration::ZERO),
            }),
            Err(e) => Err(e.into()),
        }
    }

    /// Call, surfacing a server-reported error as [`ClientError::Server`].
    fn checked(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected { expected: "pong" }),
        }
    }

    /// Serve a batch of queries; each answer slot is the engine's
    /// byte-identical response or a structured admission rejection.
    pub fn batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<Result<QueryResponse, Rejection>>, ClientError> {
        match self.checked(&Request::Batch(queries.to_vec()))? {
            Response::Batch(outcomes) => Ok(outcomes),
            _ => Err(ClientError::Unexpected { expected: "batch answers" }),
        }
    }

    /// The daemon's live metrics registry as JSON.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.checked(&Request::Metrics)? {
            Response::MetricsJson(json) => Ok(json),
            _ => Err(ClientError::Unexpected { expected: "metrics json" }),
        }
    }

    /// Server identity and shape.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        match self.checked(&Request::Info)? {
            Response::Info(info) => Ok(info),
            _ => Err(ClientError::Unexpected { expected: "server info" }),
        }
    }

    /// Apply a delta (`update-index` text format) through a graceful
    /// rollout.
    pub fn apply_delta(&mut self, text: &str) -> Result<DeltaOutcome, ClientError> {
        match self.checked(&Request::ApplyDelta { text: text.into() })? {
            Response::DeltaApplied(outcome) => Ok(outcome),
            _ => Err(ClientError::Unexpected { expected: "delta outcome" }),
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected { expected: "shutdown ack" }),
        }
    }
}

/// Retry policy of a [`RetryClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per idempotent call (first try included).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on one backoff sleep.
    pub max_backoff: Duration,
    /// Lifetime retry budget across all calls of one client: a flapping
    /// daemon degrades to fast failures instead of an unbounded retry
    /// storm.
    pub budget: u32,
    /// Bound on each dial (TCP); `None` dials blocking.
    pub connect_timeout: Option<Duration>,
    /// Bound on each request/response exchange; `None` waits forever.
    pub request_timeout: Option<Duration>,
    /// Seed of the deterministic backoff jitter (so tests and the chaos
    /// harness replay identical schedules).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            budget: 64,
            connect_timeout: Some(Duration::from_secs(5)),
            request_timeout: Some(Duration::from_secs(30)),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Is this failure worth a retry *for an idempotent request*?
///
/// Lost connections and timeouts leave the request's fate unknown;
/// [`ServeError::Degraded`] and [`ServeError::QueueFull`] are the
/// daemon explicitly saying "retry me"; [`ServeError::IdleTimeout`] is
/// a structured close that a reconnect heals. Everything else (protocol
/// garbage, admission rejections, bad requests) retries the same way it
/// failed, so it is not retried.
fn retryable(error: &ClientError) -> bool {
    matches!(
        error,
        ClientError::Connect(_)
            | ClientError::ConnectionLost { .. }
            | ClientError::TimedOut { .. }
            | ClientError::Closed
            | ClientError::Server(ServeError::Degraded { .. })
            | ClientError::Server(ServeError::QueueFull { .. })
            | ClientError::Server(ServeError::IdleTimeout { .. })
    )
}

/// Does this failure invalidate the connection (forcing a reconnect on
/// the next attempt)?
fn connection_dead(error: &ClientError) -> bool {
    matches!(
        error,
        ClientError::Connect(_)
            | ClientError::ConnectionLost { .. }
            | ClientError::TimedOut { .. }
            | ClientError::Closed
            | ClientError::Protocol(_)
            | ClientError::Server(ServeError::IdleTimeout { .. })
    )
}

/// A [`Client`] wrapper that survives transient failure: reconnects on
/// lost connections (including a daemon restart), retries idempotent
/// verbs with capped exponential backoff and deterministic jitter, and
/// spends a bounded lifetime retry budget. Non-idempotent verbs
/// (`apply_delta`, `shutdown`) get exactly one attempt — their fate on
/// a lost connection is unknown, and guessing is worse than reporting.
pub struct RetryClient {
    address: Listen,
    policy: RetryPolicy,
    inner: Option<Client>,
    budget_left: u32,
    jitter: u64,
}

impl RetryClient {
    /// A lazy client: the first call dials.
    pub fn new(address: Listen, policy: RetryPolicy) -> Self {
        let budget_left = policy.budget;
        let jitter = policy.jitter_seed | 1; // xorshift must not start at 0
        RetryClient { address, policy, inner: None, budget_left, jitter }
    }

    /// The address this client dials.
    pub fn address(&self) -> &Listen {
        &self.address
    }

    /// Retries left in the lifetime budget.
    pub fn budget_left(&self) -> u32 {
        self.budget_left
    }

    fn connect(&mut self) -> Result<&mut Client, ClientError> {
        if self.inner.is_none() {
            let mut client = match self.policy.connect_timeout {
                Some(timeout) => Client::connect_timeout(&self.address, timeout)?,
                None => Client::connect(&self.address)?,
            };
            client.set_request_timeout(self.policy.request_timeout)?;
            self.inner = Some(client);
        }
        Ok(self.inner.as_mut().expect("just connected"))
    }

    /// Deterministic jittered exponential backoff: `base * 2^(attempt-1)`
    /// capped at `max_backoff`, plus up to half of itself in xorshift
    /// jitter (decorrelates a fleet of clients hammering one daemon).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self.policy.base_backoff.saturating_mul(1u32 << exp);
        let capped = raw.min(self.policy.max_backoff);
        // xorshift64
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let half = capped.as_nanos() as u64 / 2;
        let jitter_ns = if half == 0 { 0 } else { self.jitter % half };
        capped + Duration::from_nanos(jitter_ns)
    }

    /// Run one idempotent exchange with the full retry loop.
    fn call_idempotent<T>(
        &mut self,
        exchange: impl Fn(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 1u32;
        loop {
            let result = self.connect().and_then(&exchange);
            let error = match result {
                Ok(value) => return Ok(value),
                Err(error) => error,
            };
            if connection_dead(&error) {
                self.inner = None;
            }
            if !retryable(&error) || attempt >= self.policy.attempts.max(1) || self.budget_left == 0
            {
                return Err(error);
            }
            self.budget_left -= 1;
            smetrics::RETRIES.increment();
            std::thread::sleep(self.backoff(attempt));
            attempt += 1;
        }
    }

    /// Run one non-idempotent exchange: a single attempt, no retry (the
    /// connection is still re-dialed if a previous call left it dead).
    fn call_once<T>(
        &mut self,
        exchange: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let result = self.connect().and_then(exchange);
        if let Err(error) = &result {
            if connection_dead(error) {
                self.inner = None;
            }
        }
        result
    }

    /// Liveness probe (idempotent; retried).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call_idempotent(|c| c.ping())
    }

    /// Serve a batch of queries (idempotent; retried — queries never
    /// mutate the served index).
    pub fn batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<Result<QueryResponse, Rejection>>, ClientError> {
        self.call_idempotent(|c| c.batch(queries))
    }

    /// The daemon's live metrics registry as JSON (idempotent; retried).
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        self.call_idempotent(|c| c.metrics_json())
    }

    /// Server identity and shape (idempotent; retried).
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        self.call_idempotent(|c| c.info())
    }

    /// Apply a delta — NOT idempotent (a delta applied twice is a
    /// different index), so exactly one attempt.
    pub fn apply_delta(&mut self, text: &str) -> Result<DeltaOutcome, ClientError> {
        self.call_once(|c| c.apply_delta(text))
    }

    /// Ask the daemon to drain and exit (one attempt).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call_once(|c| c.shutdown())
    }
}

//! # imm-serve
//!
//! Out-of-process serving: a long-running shard-server daemon speaking a
//! small length-prefixed binary protocol over unix or TCP sockets.
//!
//! `imm-shard` serves scatter/gather queries inside one process;
//! this crate is the step across the process boundary. One server
//! process hosts every [`imm_shard::ShardSegment`] of a
//! [`imm_shard::ShardedIndex`] behind the PR 6 pinned worker pool and a
//! coordinator loop that accepts connections, decodes framed requests,
//! and scatters them over the engine — the control-plane/data-plane
//! split of a dataplane daemon (`ctl.rs` vs `io.rs`), with the RPC
//! surface as the control plane and the pinned shard workers as the
//! data plane.
//!
//! * [`protocol`] — the wire format: magic + version + `u32`
//!   length-prefixed frames, a defensive decoder (a hostile length
//!   prefix cannot drive an allocation, a truncated or garbage frame is
//!   a structured [`ProtocolError`], never a panic or a hang), and
//!   bit-exact [`Query`](imm_service::Query) /
//!   [`QueryResponse`](imm_service::QueryResponse) codecs (`f64`s
//!   travel as raw bits), so a remote answer is **byte-identical** to
//!   the in-process engine's — the `shard_parity.rs` discipline, now
//!   across a socket.
//! * [`admission`] — per-query cost estimates from the shards' postings
//!   sizes feeding admission control: over-budget queries get a
//!   structured [`Rejection`] while in-budget
//!   traffic keeps serving, and a bounded in-flight counter sheds whole
//!   requests with a structured queue-full error instead of queueing
//!   without limit.
//! * [`server`] — the daemon: listener + per-connection threads, a
//!   housekeeping tick that samples queue depths into max-over-window
//!   gauges (the PR 7 follow-on), a `metrics` RPC verb exposing the
//!   live process's `imm-obs` registry, and graceful shard-by-shard
//!   `apply_delta` rollout — the replacement index is rebuilt off to
//!   the side (clean shards share their segments with the old index)
//!   and swapped in atomically, so queries keep serving on the old
//!   segments until the swap.
//! * [`client`] — the blocking client used by the CLI `client`
//!   subcommand, the `query_storm` bench, and the parity suite.

pub mod admission;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use admission::{Admission, CostModel};
pub use client::{Client, ClientError, RetryClient, RetryPolicy};
pub use protocol::{
    DeltaOutcome, ProtocolError, Rejection, Request, Response, ServeError, ServerInfo,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{Listen, Server, ServerConfig, ServerHandle};

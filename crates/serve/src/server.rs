//! The shard-server daemon.
//!
//! One process hosts every shard of a [`ShardedIndex`] behind the
//! pinned worker pool and a coordinator loop:
//!
//! * The **accept loop** (one thread) listens on a unix or TCP socket,
//!   spawns one thread per connection, and doubles as the daemon's
//!   **housekeeping tick**: on a fixed cadence it peeks the racy queue
//!   depths (shared pool, pinned shard cells, in-flight requests) and
//!   publishes their max-over-window into gauges — the sampled
//!   replacement for reporting a point-in-time read as a metric.
//! * Each **connection thread** runs a strict request/response loop
//!   over length-prefixed frames. A protocol error (bad magic,
//!   oversized or truncated frame, garbage payload) earns a structured
//!   error response and a dropped connection — never a panic, a hang,
//!   or an unbounded allocation.
//! * **Admission** gates every batch: a bounded in-flight slot per
//!   request, a postings-size cost estimate per query (see
//!   [`crate::admission`]).
//! * **Rolling refresh**: `apply_delta` builds the replacement index
//!   off to the side — [`ShardedIndex::rebuilt_with_delta`] shares every
//!   clean shard's segment with the live index — then swaps one `Arc`.
//!   Queries that already hold the old state keep serving on the old
//!   segments; the next request sees the new index. Rollouts serialize
//!   behind a mutex; queries never wait on it.
//!
//! Remote answers are **byte-identical** to the in-process engine's:
//! the daemon calls the very same [`ShardedEngine`] entry points and the
//! wire codec round-trips `f64`s as raw bits. The socket parity suite
//! pins this across shard counts, including after rolling refreshes.

use crate::admission::{Admission, CostModel};
use crate::metrics as smetrics;
use crate::protocol::{
    self, DeltaOutcome, FrameRead, Rejection, Request, Response, ServeError, ServerInfo,
    DEFAULT_MAX_FRAME_LEN,
};
use imm_exec::QueueDepthSampler;
use imm_graph::{CsrGraph, EdgeWeights, GraphDelta};
use imm_obs::MaxWindow;
use imm_service::snapshot::DeltaJournal;
use imm_service::QueryResponse;
use imm_shard::{ShardedEngine, ShardedIndex};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::RwLock;
use std::thread;
use std::time::{Duration, Instant};

/// Where the daemon listens (and, once bound, the resolved address a
/// client should dial — TCP port 0 resolves to the assigned port).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7071` (port 0 picks a free port).
    Tcp(String),
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
            Listen::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A connected socket of either family.
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn connect(address: &Listen) -> io::Result<Stream> {
        match address {
            Listen::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Listen::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
        }
    }

    /// Connect with a bound on how long the dial itself may take. Unix
    /// sockets connect (or fail) immediately and ignore the timeout; TCP
    /// dials every resolved address with `TcpStream::connect_timeout`.
    pub(crate) fn connect_timeout(address: &Listen, timeout: Duration) -> io::Result<Stream> {
        match address {
            Listen::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Listen::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let mut last =
                    io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing");
                for resolved in addr.as_str().to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(stream) => {
                            stream.set_nodelay(true)?;
                            return Ok(Stream::Tcp(stream));
                        }
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
        }
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    pub(crate) fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(timeout),
            Stream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(listen: &Listen) -> io::Result<(Listener, Listen)> {
        match listen {
            Listen::Unix(path) => {
                let listener = UnixListener::bind(path)?;
                Ok((Listener::Unix(listener), Listen::Unix(path.clone())))
            }
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let resolved = Listen::Tcp(listener.local_addr()?.to_string());
                Ok((Listener::Tcp(listener), resolved))
            }
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }
}

/// Tuning knobs of one daemon instance.
pub struct ServerConfig {
    /// Where to listen.
    pub listen: Listen,
    /// Serving parallelism: pinned shard workers come out of this count
    /// (see [`ShardedEngine::with_options`]), and batch requests fan
    /// across it.
    pub threads: usize,
    /// Response-cache capacity per engine generation (0 disables).
    pub cache_capacity: usize,
    /// Per-query cost budget in postings entries (`None` admits all).
    pub budget: Option<u64>,
    /// Bound on concurrently served requests across all connections.
    pub max_inflight: usize,
    /// Housekeeping cadence: queue-depth sampling and shutdown checks.
    pub tick: Duration,
    /// Samples per max-over-window gauge.
    pub sample_window: usize,
    /// Decoder cap on one frame's payload.
    pub max_frame_len: usize,
    /// Close a connection that sends no frame for this long, after a
    /// structured [`ServeError::IdleTimeout`] goodbye (slow-loris
    /// shedding). `None` keeps connections open indefinitely.
    pub idle_timeout: Option<Duration>,
    /// Socket write timeout per connection: a peer that stops draining
    /// its receive buffer cannot pin a connection thread forever.
    pub write_timeout: Option<Duration>,
    /// Execution deadline per batch request: queries that have not
    /// started when it expires answer a structured
    /// [`Rejection::DeadlineExceeded`] instead of running.
    pub batch_deadline: Option<Duration>,
    /// Journal file for `apply_delta` texts (crash safety): every delta
    /// is appended and fsynced *before* the rollout commits, so a crash
    /// between accepting a delta and persisting a refreshed snapshot can
    /// replay it on restart. `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Delta-log length of the snapshot this daemon loaded: journal
    /// entries are indexed from here so replay tooling can tell already-
    /// persisted deltas from lost ones.
    pub journal_base: u64,
}

impl ServerConfig {
    /// Defaults sized for a small deployment: global-pool parallelism,
    /// the service-layer default cache, no cost budget, 64 in-flight
    /// requests, a 50 ms tick with a 20-sample window (a one-second
    /// high-water mark).
    pub fn new(listen: Listen) -> Self {
        ServerConfig {
            listen,
            threads: imm_exec::default_threads(),
            cache_capacity: imm_service::DEFAULT_CACHE_CAPACITY,
            budget: None,
            max_inflight: 64,
            tick: Duration::from_millis(50),
            sample_window: 20,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            idle_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
            batch_deadline: None,
            journal: None,
            journal_base: 0,
        }
    }
}

/// The engine generation a request serves against: swapped wholesale by
/// a rollout, so a request that cloned the `Arc` keeps a consistent
/// (engine, cost-model) pair for its whole lifetime.
struct EngineState {
    engine: ShardedEngine,
    cost: CostModel,
}

/// What to do with the connection after answering one request.
enum Flow {
    Continue,
    Close,
}

/// Shared daemon state: the swappable engine generation, admission
/// gates, the rollout lock, and the shutdown flag.
pub struct Server {
    state: RwLock<Arc<EngineState>>,
    admission: Admission,
    /// The live graph/weights pair deltas apply to. `None` for a static
    /// index (rollouts answer [`ServeError::NotDynamic`]). The mutex
    /// serializes rollouts; the query path never takes it.
    dynamic: Mutex<Option<(CsrGraph, EdgeWeights)>>,
    rollouts: AtomicU64,
    shutdown: AtomicBool,
    metrics_provider: Box<dyn Fn() -> String + Send + Sync>,
    /// Crash-safety journal for accepted deltas; appends serialize under
    /// the `dynamic` rollout lock (`None` when journaling is off).
    journal: Mutex<Option<DeltaJournal>>,
    journal_base: u64,
    threads: usize,
    cache_capacity: usize,
    tick: Duration,
    sample_window: usize,
    max_frame_len: usize,
    idle_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    batch_deadline: Option<Duration>,
}

impl Server {
    /// Start the daemon: bind, spawn the accept loop, return a handle
    /// with the resolved address.
    ///
    /// `dynamic` is the graph/weights pair rolling `apply_delta` replays
    /// against (pass `None` to serve statically); `metrics_provider`
    /// renders the process's metrics registry for the `metrics` verb —
    /// the CLI wires `imm_bench::obs::registry_json` here (the provider
    /// lives upstream so this crate stays below the bench layer).
    pub fn start(
        index: Arc<ShardedIndex>,
        dynamic: Option<(CsrGraph, EdgeWeights)>,
        config: ServerConfig,
        metrics_provider: impl Fn() -> String + Send + Sync + 'static,
    ) -> io::Result<ServerHandle> {
        smetrics::register();
        imm_exec::metrics::register();
        let engine = ShardedEngine::with_options(index, config.threads, config.cache_capacity);
        let cost = CostModel::from_index(engine.index());
        let journal = match &config.journal {
            Some(path) => Some(DeltaJournal::open(path)?),
            None => None,
        };
        let server = Arc::new(Server {
            state: RwLock::new(Arc::new(EngineState { engine, cost })),
            admission: Admission::new(config.budget, config.max_inflight),
            dynamic: Mutex::new(dynamic),
            rollouts: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            metrics_provider: Box::new(metrics_provider),
            journal: Mutex::new(journal),
            journal_base: config.journal_base,
            threads: config.threads,
            cache_capacity: config.cache_capacity,
            tick: config.tick,
            sample_window: config.sample_window,
            max_frame_len: config.max_frame_len,
            idle_timeout: config.idle_timeout,
            write_timeout: config.write_timeout,
            batch_deadline: config.batch_deadline,
        });

        let (listener, address) = Listener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let accept_server = Arc::clone(&server);
        let accept_address = address.clone();
        let thread = thread::Builder::new()
            .name("imm-serve-accept".into())
            .spawn(move || accept_loop(accept_server, listener, accept_address))?;
        Ok(ServerHandle { address, thread, server })
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The engine generation serving right now. Poisoning is impossible
    /// in practice (writers only swap an `Arc`), but a long-lived daemon
    /// must not compound a panic: recover the inner value instead.
    fn current(&self) -> Arc<EngineState> {
        self.state.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Answer one decoded request.
    fn handle(&self, request: Request) -> (Response, Flow) {
        smetrics::REQUESTS.increment();
        match request {
            Request::Ping => (Response::Pong, Flow::Continue),
            Request::Metrics => (Response::MetricsJson((self.metrics_provider)()), Flow::Continue),
            Request::Info => {
                let state = self.current();
                let index = state.engine.index();
                (
                    Response::Info(ServerInfo {
                        label: index.meta().label.clone(),
                        theta: index.num_sets() as u64,
                        nodes: index.num_nodes() as u64,
                        shards: index.num_shards() as u32,
                        workers: state.engine.num_workers() as u32,
                        rollouts: self.rollouts.load(Ordering::Acquire),
                    }),
                    Flow::Continue,
                )
            }
            Request::Batch(queries) => (self.serve_batch(queries), Flow::Continue),
            Request::ApplyDelta { text } => (self.roll_delta(&text), Flow::Continue),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                (Response::ShuttingDown, Flow::Close)
            }
        }
    }

    /// Price, admit, and execute one batch. Admission is per query —
    /// a rejected query occupies its slot in the answers while its
    /// neighbours serve; the in-flight bound sheds the whole request.
    fn serve_batch(&self, queries: Vec<imm_service::Query>) -> Response {
        let _slot = match self.admission.try_acquire() {
            Ok(slot) => slot,
            Err((inflight, limit)) => {
                smetrics::REJECTED_QUEUE_FULL.increment();
                return Response::Error(ServeError::QueueFull { inflight, limit });
            }
        };
        // One generation for the whole batch: a rollout mid-batch must
        // not split it across two indexes.
        let state = self.current();

        let mut outcomes: Vec<Option<Result<QueryResponse, Rejection>>> =
            Vec::with_capacity(queries.len());
        let mut admitted = Vec::new();
        for query in &queries {
            let verdict = state.cost.cost(query).and_then(|c| self.admission.admit(c));
            match verdict {
                Ok(()) => {
                    admitted.push(query.clone());
                    outcomes.push(None); // filled from the executed batch
                }
                Err(rejection) => {
                    match rejection {
                        Rejection::OverBudget { .. } => smetrics::REJECTED_OVER_BUDGET.increment(),
                        Rejection::InvalidVertex { .. } => {
                            smetrics::REJECTED_INVALID_VERTEX.increment()
                        }
                        // Admission never produces a deadline rejection;
                        // those come from `execute_with_deadline`.
                        Rejection::DeadlineExceeded { .. } => {
                            smetrics::DEADLINE_EXCEEDED.increment()
                        }
                    }
                    outcomes.push(Some(Err(rejection)));
                }
            }
        }
        smetrics::QUERIES.add(admitted.len() as u64);
        let executed = match self.execute_with_deadline(&state, &admitted) {
            Ok(executed) => executed,
            // A shard worker died mid-scatter: the pool respawns it and
            // the engine rebuilds its session on the next request, so the
            // whole batch degrades to one structured retryable error.
            Err(e) => return Response::Error(ServeError::Degraded { detail: e.to_string() }),
        };
        let mut responses = executed.into_iter();
        let mut filled = Vec::with_capacity(outcomes.len());
        for slot in outcomes {
            match slot {
                Some(outcome) => filled.push(outcome),
                // The engine answers every admitted query; running dry here
                // would be an engine bug, and a long-lived daemon reports
                // it instead of panicking the connection thread.
                None => match responses.next() {
                    Some(response) => filled.push(response),
                    None => {
                        return Response::Error(ServeError::BadRequest {
                            detail: "internal error: the engine answered fewer queries than \
                                     were admitted"
                                .into(),
                        })
                    }
                },
            }
        }
        Response::Batch(filled)
    }

    /// Execute the admitted queries in bounded chunks, checking the
    /// per-batch deadline between chunks: queries that have not started
    /// when it expires answer a structured [`Rejection::DeadlineExceeded`]
    /// instead of running (an in-flight chunk is allowed to finish — the
    /// engine is not preemptible, and a chunk is small enough to bound
    /// the overshoot).
    fn execute_with_deadline(
        &self,
        state: &EngineState,
        admitted: &[imm_service::Query],
    ) -> Result<Vec<Result<QueryResponse, Rejection>>, imm_shard::ScatterError> {
        let mut answers = Vec::with_capacity(admitted.len());
        match self.batch_deadline {
            None => {
                answers.extend(
                    state.engine.try_execute_batch(admitted, self.threads)?.into_iter().map(Ok),
                );
            }
            Some(limit) => {
                let started = Instant::now();
                let chunk = self.threads.max(1) * 4;
                let mut next = 0;
                while next < admitted.len() {
                    let elapsed = started.elapsed();
                    if elapsed >= limit {
                        let cut = (admitted.len() - next) as u64;
                        smetrics::DEADLINE_EXCEEDED.add(cut);
                        let rejection = Rejection::DeadlineExceeded {
                            elapsed_ms: elapsed.as_millis() as u64,
                            deadline_ms: limit.as_millis() as u64,
                        };
                        answers.extend((next..admitted.len()).map(|_| Err(rejection.clone())));
                        break;
                    }
                    let end = (next + chunk).min(admitted.len());
                    let executed =
                        state.engine.try_execute_batch(&admitted[next..end], self.threads)?;
                    answers.extend(executed.into_iter().map(Ok));
                    next = end;
                }
            }
        }
        Ok(answers)
    }

    /// Parse and apply a delta through a graceful rollout: rebuild the
    /// replacement index off to the side (clean shards share segments
    /// with the live index), stand up a fresh engine over it, swap one
    /// `Arc`. In-flight batches finish on the generation they started
    /// on; the old engine (and its pinned pool) tears down when the
    /// last of them drops it.
    fn roll_delta(&self, text: &str) -> Response {
        let delta = match GraphDelta::parse_text(text) {
            Ok(delta) => delta,
            Err(e) => return Response::Error(ServeError::Delta { detail: e.to_string() }),
        };
        let mut dynamic = self.dynamic.lock();
        let Some((graph, weights)) = dynamic.as_ref() else {
            return Response::Error(ServeError::NotDynamic);
        };
        // Fault site: a rollout aborted before the rebuild even starts.
        // The old generation keeps serving untouched; a retry is clean.
        if let Err(fault) = imm_fault::fail_point("serve.rollout.begin") {
            return Response::Error(ServeError::Delta { detail: fault.to_string() });
        }
        let current = self.current();
        let rebuilt = current.engine.index().rebuilt_with_delta(graph, weights, &delta);
        let (next_index, new_graph, new_weights, stats) = match rebuilt {
            Ok(parts) => parts,
            Err(e) => return Response::Error(ServeError::Delta { detail: e.to_string() }),
        };
        // Fault site: the replacement index is fully rebuilt but not yet
        // committed. Failing here must discard it wholesale — the old
        // generation serves byte-identically and a retry succeeds.
        if let Err(fault) = imm_fault::fail_point("serve.rollout.commit") {
            return Response::Error(ServeError::Delta { detail: fault.to_string() });
        }
        // Journal the accepted delta (fsynced) BEFORE the commit becomes
        // visible: a crash after this point can replay the delta from the
        // journal; a crash before it never claimed the delta was applied.
        if let Some(journal) = self.journal.lock().as_mut() {
            let applied_index = self.journal_base + self.rollouts.load(Ordering::Acquire);
            if let Err(e) = journal.append(applied_index, text) {
                return Response::Error(ServeError::Delta {
                    detail: format!("delta journal append failed (rollout refused): {e}"),
                });
            }
        }
        let engine =
            ShardedEngine::with_options(Arc::new(next_index), self.threads, self.cache_capacity);
        let cost = CostModel::from_index(engine.index());
        *self.state.write().unwrap_or_else(|e| e.into_inner()) =
            Arc::new(EngineState { engine, cost });
        *dynamic = Some((new_graph, new_weights));
        self.rollouts.fetch_add(1, Ordering::AcqRel);
        smetrics::ROLLOUTS.increment();
        Response::DeltaApplied(DeltaOutcome {
            total_sets: stats.total_sets as u64,
            resampled_sets: stats.resampled_sets as u64,
            inserted_edges: stats.inserted_edges as u64,
            deleted_edges: stats.deleted_edges as u64,
            reweighted_edges: stats.reweighted_edges as u64,
            edges_after: stats.num_edges_after as u64,
        })
    }

    /// One housekeeping observation: roll the racy depth peeks into the
    /// max-over-window gauges.
    fn sample(&self, depths: &mut QueueDepthSampler, inflight: &mut MaxWindow) {
        let shared = imm_exec::global().queue_depths();
        let pinned = self.current().engine.queue_depths();
        depths.sample(&shared, &pinned);
        smetrics::INFLIGHT_PEAK.set(inflight.record(self.admission.inflight() as u64) as f64);
    }
}

fn accept_loop(server: Arc<Server>, listener: Listener, address: Listen) {
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut depth_sampler = QueueDepthSampler::new(server.sample_window);
    let mut inflight_window = MaxWindow::new(server.sample_window);
    let mut last_tick = Instant::now();
    let poll = server.tick.min(Duration::from_millis(10)).max(Duration::from_millis(1));

    while !server.shutdown_requested() {
        match listener.accept() {
            Ok(stream) => {
                smetrics::CONNECTIONS.increment();
                let conn_server = Arc::clone(&server);
                let handle = thread::Builder::new()
                    .name("imm-serve-conn".into())
                    .spawn(move || serve_connection(conn_server, stream));
                match handle {
                    Ok(handle) => connections.push(handle),
                    Err(e) => eprintln!("[imm-serve] failed to spawn connection thread: {e}"),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(poll),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("[imm-serve] accept failed: {e}");
                thread::sleep(poll);
            }
        }
        if last_tick.elapsed() >= server.tick {
            server.sample(&mut depth_sampler, &mut inflight_window);
            last_tick = Instant::now();
            connections.retain(|c| !c.is_finished());
        }
    }

    // Drain: connection loops observe the shutdown flag within one read
    // timeout and return; join them all before releasing the socket.
    for connection in connections {
        let _ = connection.join();
    }
    if let Listen::Unix(path) = &address {
        let _ = std::fs::remove_file(path);
    }
}

/// Strict request/response loop over one connection. Any protocol error
/// earns a best-effort structured error frame and a dropped connection
/// (after garbage the stream position is untrustworthy). A connection
/// that sends nothing for the configured idle timeout gets a structured
/// [`ServeError::IdleTimeout`] goodbye and a close — a slow-loris peer
/// sheds itself instead of pinning a thread.
fn serve_connection(server: Arc<Server>, stream: Stream) {
    // The read timeout doubles as the shutdown-check cadence, the
    // half-written-frame guard (a stalled mid-frame read times out into
    // a structured Truncated error instead of hanging the thread), and
    // the idle clock's granularity.
    let timeout = server.tick.max(Duration::from_millis(10));
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    if stream.set_write_timeout(server.write_timeout).is_err() {
        return;
    }
    // Under an installed fault plan the socket itself misbehaves:
    // injected read/write errors, short writes, stalls. A no-op wrapper
    // otherwise.
    let mut stream = imm_fault::FaultyIo::new(stream, "serve.conn");
    let mut idle = Duration::ZERO;
    loop {
        if server.shutdown_requested() {
            return;
        }
        match protocol::read_frame(&mut stream, server.max_frame_len) {
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Idle) => {
                idle += timeout;
                if let Some(limit) = server.idle_timeout {
                    if idle >= limit {
                        smetrics::CONN_TIMEOUTS.increment();
                        let goodbye = Response::Error(ServeError::IdleTimeout {
                            idle_ms: idle.as_millis() as u64,
                        });
                        let _ = protocol::write_frame(
                            &mut stream,
                            &protocol::encode_response(&goodbye),
                        );
                        return;
                    }
                }
                continue;
            }
            Ok(FrameRead::Frame(payload)) => {
                idle = Duration::ZERO;
                match protocol::decode_request(&payload) {
                    Ok(request) => {
                        let (response, flow) = server.handle(request);
                        let sent = protocol::write_frame(
                            &mut stream,
                            &protocol::encode_response(&response),
                        );
                        if sent.is_err() || matches!(flow, Flow::Close) {
                            return;
                        }
                    }
                    Err(e) => {
                        smetrics::PROTOCOL_ERRORS.increment();
                        let reply =
                            Response::Error(ServeError::BadRequest { detail: e.to_string() });
                        let _ =
                            protocol::write_frame(&mut stream, &protocol::encode_response(&reply));
                        return;
                    }
                }
            }
            Err(e) => {
                smetrics::PROTOCOL_ERRORS.increment();
                // Grammar violations earn a structured goodbye; raw
                // transport failures don't — the socket is broken, and the
                // client's own read will report the loss. (This also keeps
                // injected socket faults looking like what they simulate:
                // a lost connection, not a server-side complaint.)
                if !matches!(e, protocol::ProtocolError::Io(_)) {
                    let reply = Response::Error(ServeError::BadRequest { detail: e.to_string() });
                    let _ = protocol::write_frame(&mut stream, &protocol::encode_response(&reply));
                }
                return;
            }
        }
    }
}

/// Handle on a running daemon: the resolved listen address plus
/// stop/join controls.
pub struct ServerHandle {
    address: Listen,
    thread: thread::JoinHandle<()>,
    server: Arc<Server>,
}

impl ServerHandle {
    /// The address clients should dial (TCP port 0 already resolved).
    pub fn address(&self) -> &Listen {
        &self.address
    }

    /// Completed rollouts so far.
    pub fn rollouts(&self) -> u64 {
        self.server.rollouts.load(Ordering::Acquire)
    }

    /// Request shutdown without a client connection (the accept loop
    /// notices within one tick). The `shutdown` RPC verb does the same
    /// from the wire.
    pub fn stop(&self) {
        self.server.shutdown.store(true, Ordering::Release);
    }

    /// Wait for the daemon to exit (all connections drained, unix socket
    /// file removed).
    pub fn join(self) -> thread::Result<()> {
        self.thread.join()
    }
}

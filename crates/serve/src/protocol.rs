//! The wire format of the serving daemon.
//!
//! # Framing
//!
//! Every message travels as one frame:
//!
//! ```text
//! +------+---------+--------------+------------------+
//! | IMSV | version | len (u32 LE) | payload (len B)  |
//! +------+---------+--------------+------------------+
//!   4 B      1 B        4 B            <= max len
//! ```
//!
//! The decoder is defensive by construction: the magic and version are
//! checked before the length, the length is checked against the
//! decoder's cap **before any allocation** (a hostile prefix cannot
//! drive an out-of-memory), a stream that ends or stalls mid-frame is a
//! structured [`ProtocolError::Truncated`] (never a hang — reads run
//! under the socket's read timeout), and every payload decode is
//! bounds-checked (element counts are validated against the bytes
//! actually present, audience bitmap members against the declared
//! capacity). Nothing in this module panics on wire input; the
//! frame-corruption suite pins that the way the snapshot corruption
//! suite pins the snapshot decoder.
//!
//! # Byte identity
//!
//! [`QueryResponse`] floats are encoded as raw IEEE-754 bits
//! (`f64::to_bits`) and reconstructed with `f64::from_bits`, so a
//! response decoded from the socket compares `==` (bit-for-bit on the
//! floats) with the in-process engine's answer. The socket parity suite
//! holds the daemon to exactly that.

use imm_rrr::BitSet;
use imm_service::{Query, QueryResponse};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"IMSV";

/// Protocol revision carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Frame header length: magic + version + payload length.
pub const FRAME_HEADER_LEN: usize = 9;

/// Default cap on one frame's payload (decoder refuses larger prefixes
/// before allocating).
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// Cap on a wire audience bitmap's declared capacity: a hostile capacity
/// field cannot make the decoder allocate an arbitrarily large word
/// array (128 Mi vertices ≙ a 16 MiB bitmap, matching the frame cap).
pub const MAX_AUDIENCE_CAPACITY: u64 = 1 << 27;

/// Everything that can go wrong between bytes and messages.
#[derive(Debug)]
pub enum ProtocolError {
    /// The frame does not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The peer speaks a different protocol revision.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u8,
        /// The version byte in the offending frame.
        theirs: u8,
    },
    /// The length prefix exceeds the decoder's cap (refused before any
    /// allocation).
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// The decoder's cap.
        max: u64,
    },
    /// The stream ended (or stalled past the read timeout) mid-frame.
    Truncated {
        /// Which structure was being read.
        context: &'static str,
    },
    /// An opcode or enum tag the decoder does not know.
    UnknownTag {
        /// Which structure was being read.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A structurally invalid payload (bad counts, range violations,
    /// trailing bytes, invalid UTF-8, ...).
    Malformed {
        /// Which structure was being read.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A transport error outside the frame grammar.
    Io(io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected {FRAME_MAGIC:?})")
            }
            ProtocolError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: peer speaks v{theirs}, this build v{ours}")
            }
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Truncated { context } => {
                write!(f, "stream ended or stalled while reading {context}")
            }
            ProtocolError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} in {context}")
            }
            ProtocolError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Outcome of reading one frame off a connection.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The read timeout expired with no frame started — the connection
    /// is idle (the server's housekeeping window), not broken.
    Idle,
}

fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// `read_exact` that folds EOF *and* a stalled read (timeout mid-frame:
/// the half-written-frame case) into [`ProtocolError::Truncated`].
fn read_exact_frame(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(ProtocolError::Truncated { context }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => return Err(ProtocolError::Truncated { context }),
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame. Distinguishes clean EOF and idle timeouts *before*
/// the first byte from truncation *after* it; the length prefix is
/// validated against `max_len` before the payload buffer is allocated.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<FrameRead, ProtocolError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // First byte separately: zero bytes read means EOF/idle, not truncation.
    loop {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(FrameRead::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => return Ok(FrameRead::Idle),
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    read_exact_frame(r, &mut header[1..], "frame header")?;

    let magic = [header[0], header[1], header[2], header[3]];
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::BadMagic { found: magic });
    }
    let version = header[4];
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: version });
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > max_len {
        return Err(ProtocolError::FrameTooLarge { len: len as u64, max: max_len as u64 });
    }
    let mut payload = vec![0u8; len];
    read_exact_frame(r, &mut payload, "frame payload")?;
    Ok(FrameRead::Frame(payload))
}

/// Write one frame (header + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > u32::MAX as usize {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = PROTOCOL_VERSION;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Payload primitives.

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_u32_list(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Bounds-checked payload reader: every accessor reports which structure
/// it was decoding, element counts are validated against the bytes
/// actually remaining, and [`Reader::finish`] rejects trailing garbage.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ProtocolError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ProtocolError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// A list length that must fit in the remaining bytes at
    /// `elem_size` bytes per element — a garbage count can never drive
    /// an allocation past the frame it arrived in.
    fn list_len(
        &mut self,
        elem_size: usize,
        context: &'static str,
    ) -> Result<usize, ProtocolError> {
        let count = self.u32(context)? as usize;
        if count.saturating_mul(elem_size) > self.remaining() {
            return Err(ProtocolError::Malformed {
                context,
                detail: format!(
                    "element count {count} exceeds the {} bytes left in the frame",
                    self.remaining()
                ),
            });
        }
        Ok(count)
    }

    fn u32_list(&mut self, context: &'static str) -> Result<Vec<u32>, ProtocolError> {
        let count = self.list_len(4, context)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32(context)?);
        }
        Ok(out)
    }

    fn str(&mut self, context: &'static str) -> Result<String, ProtocolError> {
        let len = self.list_len(1, context)?;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed {
            context,
            detail: "string is not valid UTF-8".into(),
        })
    }

    fn finish(self, context: &'static str) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::Malformed {
                context,
                detail: format!("{} trailing bytes after the message", self.remaining()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Query / QueryResponse codecs (bit-exact).

const TAG_TOP_K: u8 = 0x00;
const TAG_SPREAD: u8 = 0x01;
const TAG_MARGINAL: u8 = 0x02;

fn put_query(out: &mut Vec<u8>, query: &Query) {
    match query {
        Query::TopK { k, audience } => {
            put_u8(out, TAG_TOP_K);
            put_u64(out, *k as u64);
            match audience {
                None => put_u8(out, 0),
                Some(a) => {
                    put_u8(out, 1);
                    put_u64(out, a.capacity() as u64);
                    let members: Vec<u32> = a.iter().map(|v| v as u32).collect();
                    put_u32_list(out, &members);
                }
            }
        }
        Query::Spread { seeds } => {
            put_u8(out, TAG_SPREAD);
            put_u32_list(out, seeds);
        }
        Query::Marginal { seeds, candidate } => {
            put_u8(out, TAG_MARGINAL);
            put_u32_list(out, seeds);
            put_u32(out, *candidate);
        }
    }
}

fn get_query(r: &mut Reader<'_>) -> Result<Query, ProtocolError> {
    const CTX: &str = "query";
    match r.u8(CTX)? {
        TAG_TOP_K => {
            let k = r.u64(CTX)? as usize;
            let audience = match r.u8(CTX)? {
                0 => None,
                1 => {
                    let capacity = r.u64(CTX)?;
                    if capacity > MAX_AUDIENCE_CAPACITY {
                        return Err(ProtocolError::Malformed {
                            context: CTX,
                            detail: format!(
                                "audience capacity {capacity} exceeds the \
                                 {MAX_AUDIENCE_CAPACITY} cap"
                            ),
                        });
                    }
                    let members = r.u32_list(CTX)?;
                    if let Some(&bad) = members.iter().find(|&&m| m as u64 >= capacity) {
                        return Err(ProtocolError::Malformed {
                            context: CTX,
                            detail: format!(
                                "audience member {bad} outside the declared capacity {capacity}"
                            ),
                        });
                    }
                    Some(BitSet::from_iter_with_capacity(
                        capacity as usize,
                        members.iter().map(|&m| m as usize),
                    ))
                }
                tag => return Err(ProtocolError::UnknownTag { context: "audience flag", tag }),
            };
            Ok(Query::TopK { k, audience })
        }
        TAG_SPREAD => Ok(Query::Spread { seeds: r.u32_list(CTX)? }),
        TAG_MARGINAL => {
            let seeds = r.u32_list(CTX)?;
            let candidate = r.u32(CTX)?;
            Ok(Query::Marginal { seeds, candidate })
        }
        tag => Err(ProtocolError::UnknownTag { context: CTX, tag }),
    }
}

fn put_query_response(out: &mut Vec<u8>, response: &QueryResponse) {
    match response {
        QueryResponse::TopK { seeds, coverage_fraction, estimated_influence } => {
            put_u8(out, TAG_TOP_K);
            put_u32_list(out, seeds);
            put_f64(out, *coverage_fraction);
            put_f64(out, *estimated_influence);
        }
        QueryResponse::Spread { coverage_fraction, estimate } => {
            put_u8(out, TAG_SPREAD);
            put_f64(out, *coverage_fraction);
            put_f64(out, *estimate);
        }
        QueryResponse::Marginal { gain_fraction, gain } => {
            put_u8(out, TAG_MARGINAL);
            put_f64(out, *gain_fraction);
            put_f64(out, *gain);
        }
    }
}

fn get_query_response(r: &mut Reader<'_>) -> Result<QueryResponse, ProtocolError> {
    const CTX: &str = "query response";
    match r.u8(CTX)? {
        TAG_TOP_K => Ok(QueryResponse::TopK {
            seeds: r.u32_list(CTX)?,
            coverage_fraction: r.f64(CTX)?,
            estimated_influence: r.f64(CTX)?,
        }),
        TAG_SPREAD => {
            Ok(QueryResponse::Spread { coverage_fraction: r.f64(CTX)?, estimate: r.f64(CTX)? })
        }
        TAG_MARGINAL => {
            Ok(QueryResponse::Marginal { gain_fraction: r.f64(CTX)?, gain: r.f64(CTX)? })
        }
        tag => Err(ProtocolError::UnknownTag { context: CTX, tag }),
    }
}

// ---------------------------------------------------------------------------
// Messages.

/// Why the daemon refused one query of a batch (its neighbours keep
/// serving — admission is per query, not per connection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The postings-size cost estimate exceeds the configured budget.
    OverBudget {
        /// Estimated postings entries the query would walk.
        estimated_cost: u64,
        /// The server's per-query budget.
        budget: u64,
    },
    /// The query names a vertex outside the served index's vertex space
    /// (the in-process engine would panic; the daemon must not).
    InvalidVertex {
        /// The offending vertex id.
        vertex: u32,
        /// Exclusive upper bound of the vertex space.
        num_nodes: u64,
    },
    /// The batch's execution deadline expired before this query ran; its
    /// admitted neighbours that finished in time still answer. Safe to
    /// retry (against a less loaded server or a larger deadline).
    DeadlineExceeded {
        /// How long the batch had been executing when the query was cut.
        elapsed_ms: u64,
        /// The server's configured per-batch deadline.
        deadline_ms: u64,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::OverBudget { estimated_cost, budget } => write!(
                f,
                "query rejected: estimated cost {estimated_cost} exceeds the budget {budget}"
            ),
            Rejection::InvalidVertex { vertex, num_nodes } => {
                write!(f, "query rejected: vertex {vertex} outside the vertex space {num_nodes}")
            }
            Rejection::DeadlineExceeded { elapsed_ms, deadline_ms } => write!(
                f,
                "query cut by the batch deadline: {elapsed_ms} ms elapsed of the \
                 {deadline_ms} ms budget"
            ),
        }
    }
}

/// A request-level failure reported by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded in-flight queue is full; retry later.
    QueueFull {
        /// Requests currently in flight.
        inflight: u64,
        /// The configured bound.
        limit: u64,
    },
    /// `apply_delta` was asked of a static (provenance-free) index.
    NotDynamic,
    /// The delta failed to parse or apply.
    Delta {
        /// Human-readable cause.
        detail: String,
    },
    /// The request was structurally valid but semantically unusable.
    BadRequest {
        /// Human-readable cause.
        detail: String,
    },
    /// The connection sat idle past the server's idle timeout; the
    /// server closes it after this frame (slow-loris shedding). Clients
    /// reconnect on the next call.
    IdleTimeout {
        /// How long the connection had been idle.
        idle_ms: u64,
    },
    /// The request hit degraded serving machinery (a shard worker died
    /// mid-scatter). The pool respawns dead workers and the engine
    /// rebuilds dirty sessions on the next request, so an immediate
    /// retry of an idempotent request is safe and expected.
    Degraded {
        /// Human-readable cause.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { inflight, limit } => {
                write!(f, "server saturated: {inflight} requests in flight (limit {limit})")
            }
            ServeError::NotDynamic => write!(
                f,
                "the served index carries no sampling provenance; deltas need a dynamic snapshot"
            ),
            ServeError::Delta { detail } => write!(f, "delta failed: {detail}"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::IdleTimeout { idle_ms } => {
                write!(f, "connection idle for {idle_ms} ms; the server is closing it")
            }
            ServeError::Degraded { detail } => {
                write!(f, "degraded serving (safe to retry): {detail}")
            }
        }
    }
}

/// What the daemon reports about itself on the `info` verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// The served index's label.
    pub label: String,
    /// Number of indexed RRR sets.
    pub theta: u64,
    /// Vertex-space size.
    pub nodes: u64,
    /// Shard count.
    pub shards: u32,
    /// Pinned worker threads serving the shards.
    pub workers: u32,
    /// Completed `apply_delta` rollouts since startup.
    pub rollouts: u64,
}

/// Outcome of a rolling `apply_delta` (mirrors
/// [`imm_service::RefreshStats`] across the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Sets in the index.
    pub total_sets: u64,
    /// Sets resampled by this rollout.
    pub resampled_sets: u64,
    /// Edge insertions applied.
    pub inserted_edges: u64,
    /// Edge deletions applied.
    pub deleted_edges: u64,
    /// Edge reweights applied.
    pub reweighted_edges: u64,
    /// Edge count of the refreshed graph revision.
    pub edges_after: u64,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// A batch of queries answered in order (a single query is a batch
    /// of one).
    Batch(Vec<Query>),
    /// The live process's `imm-obs` registry as JSON.
    Metrics,
    /// Server identity and shape.
    Info,
    /// Apply a graph delta through a graceful rollout.
    ApplyDelta {
        /// Delta in the `update-index` text format (`+ src dst w`, ...).
        text: String,
    },
    /// Stop accepting connections and exit after draining.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Per-query outcomes, in request order.
    Batch(Vec<Result<QueryResponse, Rejection>>),
    /// Answer to [`Request::Metrics`].
    MetricsJson(String),
    /// Answer to [`Request::Info`].
    Info(ServerInfo),
    /// Answer to [`Request::ApplyDelta`].
    DeltaApplied(DeltaOutcome),
    /// Answer to [`Request::Shutdown`].
    ShuttingDown,
    /// The request failed as a whole.
    Error(ServeError),
}

const OP_PING: u8 = 0x01;
const OP_BATCH: u8 = 0x02;
const OP_METRICS: u8 = 0x03;
const OP_INFO: u8 = 0x04;
const OP_APPLY_DELTA: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;

const OP_PONG: u8 = 0x81;
const OP_BATCH_ANSWERS: u8 = 0x82;
const OP_METRICS_JSON: u8 = 0x83;
const OP_INFO_DATA: u8 = 0x84;
const OP_DELTA_APPLIED: u8 = 0x85;
const OP_SHUTTING_DOWN: u8 = 0x86;
const OP_ERROR: u8 = 0xEE;

const ERR_QUEUE_FULL: u8 = 0x00;
const ERR_NOT_DYNAMIC: u8 = 0x01;
const ERR_DELTA: u8 = 0x02;
const ERR_BAD_REQUEST: u8 = 0x03;
const ERR_IDLE_TIMEOUT: u8 = 0x04;
const ERR_DEGRADED: u8 = 0x05;

const REJ_OVER_BUDGET: u8 = 0x00;
const REJ_INVALID_VERTEX: u8 = 0x01;
const REJ_DEADLINE: u8 = 0x02;

/// Encode a request payload (frame it with [`write_frame`]).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match request {
        Request::Ping => put_u8(&mut out, OP_PING),
        Request::Batch(queries) => {
            put_u8(&mut out, OP_BATCH);
            put_u32(&mut out, queries.len() as u32);
            for q in queries {
                put_query(&mut out, q);
            }
        }
        Request::Metrics => put_u8(&mut out, OP_METRICS),
        Request::Info => put_u8(&mut out, OP_INFO),
        Request::ApplyDelta { text } => {
            put_u8(&mut out, OP_APPLY_DELTA);
            put_str(&mut out, text);
        }
        Request::Shutdown => put_u8(&mut out, OP_SHUTDOWN),
    }
    out
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    const CTX: &str = "request";
    let mut r = Reader::new(payload);
    let request = match r.u8(CTX)? {
        OP_PING => Request::Ping,
        OP_BATCH => {
            // A query is at least 5 bytes (tag + one u32 field).
            let count = r.list_len(5, "query batch")?;
            let mut queries = Vec::with_capacity(count);
            for _ in 0..count {
                queries.push(get_query(&mut r)?);
            }
            Request::Batch(queries)
        }
        OP_METRICS => Request::Metrics,
        OP_INFO => Request::Info,
        OP_APPLY_DELTA => Request::ApplyDelta { text: r.str("delta text")? },
        OP_SHUTDOWN => Request::Shutdown,
        tag => return Err(ProtocolError::UnknownTag { context: CTX, tag }),
    };
    r.finish(CTX)?;
    Ok(request)
}

fn put_rejection(out: &mut Vec<u8>, rejection: &Rejection) {
    match rejection {
        Rejection::OverBudget { estimated_cost, budget } => {
            put_u8(out, REJ_OVER_BUDGET);
            put_u64(out, *estimated_cost);
            put_u64(out, *budget);
        }
        Rejection::InvalidVertex { vertex, num_nodes } => {
            put_u8(out, REJ_INVALID_VERTEX);
            put_u32(out, *vertex);
            put_u64(out, *num_nodes);
        }
        Rejection::DeadlineExceeded { elapsed_ms, deadline_ms } => {
            put_u8(out, REJ_DEADLINE);
            put_u64(out, *elapsed_ms);
            put_u64(out, *deadline_ms);
        }
    }
}

fn get_rejection(r: &mut Reader<'_>) -> Result<Rejection, ProtocolError> {
    const CTX: &str = "rejection";
    match r.u8(CTX)? {
        REJ_OVER_BUDGET => {
            Ok(Rejection::OverBudget { estimated_cost: r.u64(CTX)?, budget: r.u64(CTX)? })
        }
        REJ_INVALID_VERTEX => {
            Ok(Rejection::InvalidVertex { vertex: r.u32(CTX)?, num_nodes: r.u64(CTX)? })
        }
        REJ_DEADLINE => {
            Ok(Rejection::DeadlineExceeded { elapsed_ms: r.u64(CTX)?, deadline_ms: r.u64(CTX)? })
        }
        tag => Err(ProtocolError::UnknownTag { context: CTX, tag }),
    }
}

fn put_serve_error(out: &mut Vec<u8>, error: &ServeError) {
    match error {
        ServeError::QueueFull { inflight, limit } => {
            put_u8(out, ERR_QUEUE_FULL);
            put_u64(out, *inflight);
            put_u64(out, *limit);
        }
        ServeError::NotDynamic => put_u8(out, ERR_NOT_DYNAMIC),
        ServeError::Delta { detail } => {
            put_u8(out, ERR_DELTA);
            put_str(out, detail);
        }
        ServeError::BadRequest { detail } => {
            put_u8(out, ERR_BAD_REQUEST);
            put_str(out, detail);
        }
        ServeError::IdleTimeout { idle_ms } => {
            put_u8(out, ERR_IDLE_TIMEOUT);
            put_u64(out, *idle_ms);
        }
        ServeError::Degraded { detail } => {
            put_u8(out, ERR_DEGRADED);
            put_str(out, detail);
        }
    }
}

fn get_serve_error(r: &mut Reader<'_>) -> Result<ServeError, ProtocolError> {
    const CTX: &str = "server error";
    match r.u8(CTX)? {
        ERR_QUEUE_FULL => Ok(ServeError::QueueFull { inflight: r.u64(CTX)?, limit: r.u64(CTX)? }),
        ERR_NOT_DYNAMIC => Ok(ServeError::NotDynamic),
        ERR_DELTA => Ok(ServeError::Delta { detail: r.str(CTX)? }),
        ERR_BAD_REQUEST => Ok(ServeError::BadRequest { detail: r.str(CTX)? }),
        ERR_IDLE_TIMEOUT => Ok(ServeError::IdleTimeout { idle_ms: r.u64(CTX)? }),
        ERR_DEGRADED => Ok(ServeError::Degraded { detail: r.str(CTX)? }),
        tag => Err(ProtocolError::UnknownTag { context: CTX, tag }),
    }
}

/// Encode a response payload (frame it with [`write_frame`]).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match response {
        Response::Pong => put_u8(&mut out, OP_PONG),
        Response::Batch(outcomes) => {
            put_u8(&mut out, OP_BATCH_ANSWERS);
            put_u32(&mut out, outcomes.len() as u32);
            for outcome in outcomes {
                match outcome {
                    Ok(response) => {
                        put_u8(&mut out, 0);
                        put_query_response(&mut out, response);
                    }
                    Err(rejection) => {
                        put_u8(&mut out, 1);
                        put_rejection(&mut out, rejection);
                    }
                }
            }
        }
        Response::MetricsJson(json) => {
            put_u8(&mut out, OP_METRICS_JSON);
            put_str(&mut out, json);
        }
        Response::Info(info) => {
            put_u8(&mut out, OP_INFO_DATA);
            put_str(&mut out, &info.label);
            put_u64(&mut out, info.theta);
            put_u64(&mut out, info.nodes);
            put_u32(&mut out, info.shards);
            put_u32(&mut out, info.workers);
            put_u64(&mut out, info.rollouts);
        }
        Response::DeltaApplied(outcome) => {
            put_u8(&mut out, OP_DELTA_APPLIED);
            put_u64(&mut out, outcome.total_sets);
            put_u64(&mut out, outcome.resampled_sets);
            put_u64(&mut out, outcome.inserted_edges);
            put_u64(&mut out, outcome.deleted_edges);
            put_u64(&mut out, outcome.reweighted_edges);
            put_u64(&mut out, outcome.edges_after);
        }
        Response::ShuttingDown => put_u8(&mut out, OP_SHUTTING_DOWN),
        Response::Error(error) => {
            put_u8(&mut out, OP_ERROR);
            put_serve_error(&mut out, error);
        }
    }
    out
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    const CTX: &str = "response";
    let mut r = Reader::new(payload);
    let response = match r.u8(CTX)? {
        OP_PONG => Response::Pong,
        OP_BATCH_ANSWERS => {
            // An outcome is at least 2 bytes (ok/err flag + a tag).
            let count = r.list_len(2, "batch answers")?;
            let mut outcomes = Vec::with_capacity(count);
            for _ in 0..count {
                outcomes.push(match r.u8("batch outcome flag")? {
                    0 => Ok(get_query_response(&mut r)?),
                    1 => Err(get_rejection(&mut r)?),
                    tag => {
                        return Err(ProtocolError::UnknownTag {
                            context: "batch outcome flag",
                            tag,
                        })
                    }
                });
            }
            Response::Batch(outcomes)
        }
        OP_METRICS_JSON => Response::MetricsJson(r.str("metrics json")?),
        OP_INFO_DATA => Response::Info(ServerInfo {
            label: r.str("server info")?,
            theta: r.u64(CTX)?,
            nodes: r.u64(CTX)?,
            shards: r.u32(CTX)?,
            workers: r.u32(CTX)?,
            rollouts: r.u64(CTX)?,
        }),
        OP_DELTA_APPLIED => Response::DeltaApplied(DeltaOutcome {
            total_sets: r.u64(CTX)?,
            resampled_sets: r.u64(CTX)?,
            inserted_edges: r.u64(CTX)?,
            deleted_edges: r.u64(CTX)?,
            reweighted_edges: r.u64(CTX)?,
            edges_after: r.u64(CTX)?,
        }),
        OP_SHUTTING_DOWN => Response::ShuttingDown,
        OP_ERROR => Response::Error(get_serve_error(&mut r)?),
        tag => return Err(ProtocolError::UnknownTag { context: CTX, tag }),
    };
    r.finish(CTX)?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let audience = BitSet::from_iter_with_capacity(40, [1, 7, 39]);
        let requests = [
            Request::Ping,
            Request::Batch(vec![
                Query::top_k(5),
                Query::audience_top_k(3, audience),
                Query::Spread { seeds: vec![1, 2, 3] },
                Query::Marginal { seeds: vec![9], candidate: 4 },
            ]),
            Request::Metrics,
            Request::Info,
            Request::ApplyDelta { text: "+ 1 2 0.5\n".into() },
            Request::Shutdown,
        ];
        for request in requests {
            let decoded = decode_request(&encode_request(&request)).expect("round trip");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn response_round_trip_preserves_f64_bits() {
        let tricky = f64::from_bits(0x7FF0_0000_0000_0001); // a signalling NaN payload
        let responses = [
            Response::Pong,
            Response::Batch(vec![
                Ok(QueryResponse::TopK {
                    seeds: vec![3, 1],
                    coverage_fraction: 0.1 + 0.2, // not representable exactly
                    estimated_influence: tricky,
                }),
                Err(Rejection::OverBudget { estimated_cost: 10, budget: 4 }),
                Err(Rejection::InvalidVertex { vertex: 7, num_nodes: 5 }),
                Err(Rejection::DeadlineExceeded { elapsed_ms: 120, deadline_ms: 100 }),
                Ok(QueryResponse::Spread { coverage_fraction: -0.0, estimate: f64::INFINITY }),
                Ok(QueryResponse::Marginal { gain_fraction: f64::MIN_POSITIVE, gain: 1e-308 }),
            ]),
            Response::MetricsJson("{\"metrics\":[]}".into()),
            Response::Info(ServerInfo {
                label: "fixture".into(),
                theta: 150,
                nodes: 120,
                shards: 4,
                workers: 3,
                rollouts: 2,
            }),
            Response::DeltaApplied(DeltaOutcome {
                total_sets: 150,
                resampled_sets: 12,
                inserted_edges: 2,
                deleted_edges: 1,
                reweighted_edges: 1,
                edges_after: 599,
            }),
            Response::ShuttingDown,
            Response::Error(ServeError::QueueFull { inflight: 64, limit: 64 }),
            Response::Error(ServeError::NotDynamic),
            Response::Error(ServeError::Delta { detail: "row 3: bad weight".into() }),
            Response::Error(ServeError::BadRequest { detail: "empty".into() }),
            Response::Error(ServeError::IdleTimeout { idle_ms: 30_000 }),
            Response::Error(ServeError::Degraded {
                detail: "2 scattered request(s) lost to a dead pinned worker".into(),
            }),
        ];
        for response in responses {
            let decoded = decode_response(&encode_response(&response)).expect("round trip");
            // `==` on QueryResponse compares floats by value; additionally
            // pin the raw bits for the NaN-payload case.
            match (&decoded, &response) {
                (Response::Batch(a), Response::Batch(b)) => {
                    for (x, y) in a.iter().zip(b.iter()) {
                        match (x, y) {
                            (
                                Ok(QueryResponse::TopK { estimated_influence: ax, .. }),
                                Ok(QueryResponse::TopK { estimated_influence: bx, .. }),
                            ) => assert_eq!(ax.to_bits(), bx.to_bits()),
                            (x, y) => assert_eq!(x, y),
                        }
                    }
                }
                (decoded, response) => assert_eq!(decoded, response),
            }
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = encode_request(&Request::Batch(vec![Query::top_k(3)]));
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let mut cursor = io::Cursor::new(wire);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read") {
            FrameRead::Frame(read_back) => assert_eq!(read_back, payload),
            other => panic!("expected a frame, got {other:?}"),
        }
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read at eof") {
            FrameRead::Eof => {}
            other => panic!("expected eof, got {other:?}"),
        }
    }
}

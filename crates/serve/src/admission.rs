//! Admission control: postings-size cost estimates plus a bounded
//! in-flight counter.
//!
//! The daemon must not let one hostile or accidental query walk an
//! unbounded share of the index while latency-sensitive traffic queues
//! behind it. Every query is priced **before** it reaches the engine,
//! from data the index already has — the per-vertex postings sizes —
//! and the estimate is compared against the server's per-query budget.
//! Over-budget queries get a structured
//! [`Rejection::OverBudget`](crate::protocol::Rejection) in their batch
//! slot; the rest of the batch keeps serving. A second, request-level
//! gate bounds the number of requests in flight across all connections:
//! when the bound is hit the whole request is shed with a structured
//! queue-full error instead of queueing without limit.
//!
//! Pricing doubles as validation: computing a query's cost touches
//! every vertex it names, so out-of-range vertices are caught here with
//! a structured [`Rejection::InvalidVertex`](crate::protocol::Rejection)
//! — the in-process engine would panic on them (raw postings indexing),
//! and a long-lived daemon must never let wire input reach that path.

use crate::protocol::Rejection;
use imm_service::Query;
use imm_shard::{ShardSegment, ShardedIndex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-query cost estimates from the shards' postings sizes.
///
/// The unit is *postings entries walked*: a spread query over seeds
/// `S` scans `Σ_v degree(v)` postings across all shards; a top-k query
/// repeatedly rescans the surviving postings, so it is priced at
/// `k × mean-degree` plus the audience's postings. The estimates are
/// deliberately cheap (O(query size) lookups against CSR offsets) —
/// they gate the engine, so they cannot themselves be expensive.
#[derive(Clone)]
pub struct CostModel {
    segments: Vec<Arc<ShardSegment>>,
    num_nodes: u64,
    total_postings: u64,
}

impl CostModel {
    /// Price queries against `index`'s current segments. Rebuild the
    /// model after a rollout — costs must describe the index actually
    /// serving.
    pub fn from_index(index: &ShardedIndex) -> Self {
        let segments: Vec<Arc<ShardSegment>> = index.segments().to_vec();
        let total_postings = segments.iter().map(|s| s.postings_entries()).sum();
        CostModel { segments, num_nodes: index.num_nodes() as u64, total_postings }
    }

    /// Vertex-space size of the priced index.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Total postings entries across all shards.
    pub fn total_postings(&self) -> u64 {
        self.total_postings
    }

    /// Mean postings entries per vertex, rounded up (≥ 1 so a top-k
    /// query never prices at zero).
    fn mean_degree(&self) -> u64 {
        if self.num_nodes == 0 {
            return 1;
        }
        (self.total_postings.div_ceil(self.num_nodes)).max(1)
    }

    fn degree(&self, v: u32) -> Result<u64, Rejection> {
        if (v as u64) >= self.num_nodes {
            return Err(Rejection::InvalidVertex { vertex: v, num_nodes: self.num_nodes });
        }
        Ok(self.segments.iter().map(|s| s.degree(v)).sum())
    }

    /// Estimate the postings entries `query` will walk, validating every
    /// vertex it names along the way.
    pub fn cost(&self, query: &Query) -> Result<u64, Rejection> {
        match query {
            Query::TopK { k, audience } => {
                let mut cost = (*k as u64).saturating_mul(self.mean_degree());
                if let Some(audience) = audience {
                    for v in audience.iter() {
                        if (v as u64) >= self.num_nodes {
                            return Err(Rejection::InvalidVertex {
                                vertex: v as u32,
                                num_nodes: self.num_nodes,
                            });
                        }
                        cost = cost.saturating_add(self.degree(v as u32)?);
                    }
                }
                Ok(cost)
            }
            Query::Spread { seeds } => {
                let mut cost = 0u64;
                for &v in seeds {
                    cost = cost.saturating_add(self.degree(v)?);
                }
                Ok(cost)
            }
            Query::Marginal { seeds, candidate } => {
                let mut cost = self.degree(*candidate)?;
                for &v in seeds {
                    cost = cost.saturating_add(self.degree(v)?);
                }
                Ok(cost)
            }
        }
    }
}

/// RAII slot in the bounded in-flight queue: dropping it releases the
/// slot even if the request handler errors out part-way.
pub struct InflightGuard<'a> {
    admission: &'a Admission,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The two admission gates: a per-query cost budget and a bounded
/// in-flight request count shared by every connection.
pub struct Admission {
    budget: Option<u64>,
    max_inflight: usize,
    inflight: AtomicUsize,
}

impl Admission {
    /// `budget = None` disables the cost gate (every priced query is
    /// admitted); `max_inflight` always applies.
    pub fn new(budget: Option<u64>, max_inflight: usize) -> Self {
        Admission { budget, max_inflight, inflight: AtomicUsize::new(0) }
    }

    /// The per-query cost budget, if one is configured.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Requests currently holding an in-flight slot.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Claim an in-flight slot, or report `(inflight, limit)` when the
    /// queue is full. Lock-free: a `fetch_update` loop so two racing
    /// requests cannot both squeeze into the last slot.
    pub fn try_acquire(&self) -> Result<InflightGuard<'_>, (u64, u64)> {
        let claimed = self.inflight.fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            if n < self.max_inflight {
                Some(n + 1)
            } else {
                None
            }
        });
        match claimed {
            Ok(_) => Ok(InflightGuard { admission: self }),
            Err(n) => Err((n as u64, self.max_inflight as u64)),
        }
    }

    /// Gate one priced query against the budget.
    pub fn admit(&self, estimated_cost: u64) -> Result<(), Rejection> {
        match self.budget {
            Some(budget) if estimated_cost > budget => {
                Err(Rejection::OverBudget { estimated_cost, budget })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_slots_are_bounded_and_released_on_drop() {
        let admission = Admission::new(None, 2);
        let a = admission.try_acquire().expect("slot 1");
        let _b = admission.try_acquire().expect("slot 2");
        assert_eq!(admission.try_acquire().err(), Some((2, 2)));
        assert_eq!(admission.inflight(), 2);
        drop(a);
        assert_eq!(admission.inflight(), 1);
        let _c = admission.try_acquire().expect("slot reopened by the drop");
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let admission = Admission::new(None, 0);
        assert_eq!(admission.try_acquire().err(), Some((0, 0)));
    }

    #[test]
    fn budget_gate_is_structured() {
        let admission = Admission::new(Some(10), 4);
        assert_eq!(admission.admit(10), Ok(()));
        assert_eq!(
            admission.admit(11),
            Err(Rejection::OverBudget { estimated_cost: 11, budget: 10 })
        );
        let unlimited = Admission::new(None, 4);
        assert_eq!(unlimited.admit(u64::MAX), Ok(()));
    }
}

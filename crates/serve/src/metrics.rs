//! Daemon observability: `serve_`-prefixed metrics in the workspace
//! `imm-obs` registry.
//!
//! Counters follow the exec/shard idiom (static, relaxed adds, zero
//! cost under `obs-off`). [`INFLIGHT_PEAK`] is a sampled gauge in the
//! `QueueDepthSampler` style: the housekeeping tick peeks the racy
//! in-flight count and publishes the max over its recent window —
//! never the raw instantaneous read.

use std::sync::Once;

use imm_obs::{Counter, Gauge, Metric, Unit};

/// Connections accepted by the listener.
pub static CONNECTIONS: Counter =
    Counter::new("serve_connections", "Client connections accepted by the serving daemon");

/// Requests decoded and dispatched (all verbs).
pub static REQUESTS: Counter =
    Counter::new("serve_requests", "Framed requests decoded and dispatched by the daemon");

/// Individual queries answered inside batch requests.
pub static QUERIES: Counter =
    Counter::new("serve_queries", "Queries answered by the daemon inside batch requests");

/// Queries refused by the cost-budget admission gate.
pub static REJECTED_OVER_BUDGET: Counter = Counter::new(
    "serve_rejected_over_budget",
    "Queries refused because their postings-size cost estimate exceeded the budget",
);

/// Requests shed because the bounded in-flight queue was full.
pub static REJECTED_QUEUE_FULL: Counter = Counter::new(
    "serve_rejected_queue_full",
    "Requests shed because the daemon's bounded in-flight queue was full",
);

/// Queries refused for naming a vertex outside the served vertex space.
pub static REJECTED_INVALID_VERTEX: Counter = Counter::new(
    "serve_rejected_invalid_vertex",
    "Queries refused for naming a vertex outside the served index's vertex space",
);

/// Connections dropped on a protocol error (bad magic, oversized or
/// truncated frame, garbage payload).
pub static PROTOCOL_ERRORS: Counter = Counter::new(
    "serve_protocol_errors",
    "Connections dropped by the daemon on a framing or decoding error",
);

/// Completed graceful `apply_delta` rollouts.
pub static ROLLOUTS: Counter = Counter::new(
    "serve_rollouts",
    "Graceful apply_delta rollouts completed by the daemon since startup",
);

/// Queries cut by the per-batch execution deadline (each answered with a
/// structured `DeadlineExceeded` rejection, not dropped).
pub static DEADLINE_EXCEEDED: Counter = Counter::new(
    "serve_deadline_exceeded",
    "Queries cut by the per-batch execution deadline with a structured rejection",
);

/// Connections closed by the idle timeout (slow-loris shedding); each
/// gets a structured `IdleTimeout` goodbye frame first.
pub static CONN_TIMEOUTS: Counter = Counter::new(
    "serve_conn_timeouts",
    "Idle client connections closed by the daemon's idle timeout",
);

/// Retries issued by the retrying client (reconnects and re-sends of
/// idempotent requests after timeouts, lost connections, or degraded
/// answers). Client-side, but registered here so one process's registry
/// tells the whole fault-handling story.
pub static RETRIES: Counter = Counter::new(
    "serve_retries",
    "Idempotent requests re-sent by the retrying client after a retryable failure",
);

/// Max-over-window in-flight request count, published by the daemon's
/// housekeeping tick (the raw counter is a racy instantaneous read).
pub static INFLIGHT_PEAK: Gauge = Gauge::new(
    "serve_inflight_peak",
    "Peak concurrently in-flight requests over the housekeeping sampler's recent window",
    Unit::Count,
);

/// Register every serve metric with the process-global `imm-obs`
/// registry. Idempotent; called from the server constructor.
pub fn register() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        imm_obs::register(&[
            &CONNECTIONS as &'static dyn Metric,
            &REQUESTS,
            &QUERIES,
            &REJECTED_OVER_BUDGET,
            &REJECTED_QUEUE_FULL,
            &REJECTED_INVALID_VERTEX,
            &PROTOCOL_ERRORS,
            &ROLLOUTS,
            &DEADLINE_EXCEEDED,
            &CONN_TIMEOUTS,
            &RETRIES,
            &INFLIGHT_PEAK,
        ]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_metrics_join_the_obs_registry_once() {
        register();
        register(); // idempotent
        let names: Vec<&str> = imm_obs::snapshot().iter().map(|s| s.name).collect();
        for name in [
            "serve_connections",
            "serve_requests",
            "serve_queries",
            "serve_rejected_over_budget",
            "serve_rejected_queue_full",
            "serve_rejected_invalid_vertex",
            "serve_protocol_errors",
            "serve_rollouts",
            "serve_deadline_exceeded",
            "serve_conn_timeouts",
            "serve_retries",
            "serve_inflight_peak",
        ] {
            assert_eq!(
                names.iter().filter(|n| **n == name).count(),
                1,
                "{name} must be registered exactly once"
            );
        }
    }
}

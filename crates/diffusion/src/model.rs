//! The two diffusion models the paper evaluates.

/// Which diffusion process edge weights are interpreted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DiffusionModel {
    /// Independent Cascade: a newly activated vertex `u` gets one chance to
    /// activate each out-neighbor `v`, succeeding with probability `p_uv`.
    IndependentCascade,
    /// Linear Threshold: each vertex draws a threshold uniformly from
    /// `[0, 1]` and activates once the summed weight of its activated
    /// in-neighbors reaches it.
    LinearThreshold,
}

impl DiffusionModel {
    /// Short lowercase name used in CLI flags and benchmark output
    /// (`"ic"` / `"lt"`, matching the paper's artifact scripts).
    pub fn short_name(&self) -> &'static str {
        match self {
            DiffusionModel::IndependentCascade => "ic",
            DiffusionModel::LinearThreshold => "lt",
        }
    }

    /// Parse the short name (case-insensitive). Returns `None` for anything
    /// else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ic" | "independent_cascade" | "independentcascade" => {
                Some(DiffusionModel::IndependentCascade)
            }
            "lt" | "linear_threshold" | "linearthreshold" => Some(DiffusionModel::LinearThreshold),
            _ => None,
        }
    }
}

impl std::fmt::Display for DiffusionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffusionModel::IndependentCascade => write!(f, "Independent Cascade"),
            DiffusionModel::LinearThreshold => write!(f, "Linear Threshold"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_round_trip() {
        for m in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            assert_eq!(DiffusionModel::parse(m.short_name()), Some(m));
        }
    }

    #[test]
    fn parse_accepts_long_names_and_mixed_case() {
        assert_eq!(DiffusionModel::parse("IC"), Some(DiffusionModel::IndependentCascade));
        assert_eq!(
            DiffusionModel::parse("Linear_Threshold"),
            Some(DiffusionModel::LinearThreshold)
        );
        assert_eq!(DiffusionModel::parse("bogus"), None);
    }

    #[test]
    fn display_is_human_readable() {
        assert!(DiffusionModel::IndependentCascade.to_string().contains("Cascade"));
        assert!(DiffusionModel::LinearThreshold.to_string().contains("Threshold"));
    }
}

//! Forward cascade simulation and Monte-Carlo spread estimation.

use crate::model::DiffusionModel;
use imm_graph::{CsrGraph, EdgeWeights, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Result of a Monte-Carlo spread estimation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpreadEstimate {
    /// Mean number of activated vertices (including the seeds).
    pub mean: f64,
    /// Sample standard deviation of the activation count.
    pub std_dev: f64,
    /// Number of simulated cascades.
    pub trials: usize,
}

impl SpreadEstimate {
    /// Half-width of an approximate 95 % confidence interval on the mean.
    pub fn confidence_95(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.trials as f64).sqrt()
    }
}

/// Simulate one Independent Cascade from `seeds`; returns the number of
/// activated vertices.
///
/// Each newly activated vertex gets exactly one chance to activate each
/// currently inactive out-neighbor, succeeding with the edge's probability.
pub fn simulate_ic<R: Rng + ?Sized>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    seeds: &[NodeId],
    rng: &mut R,
) -> usize {
    let n = graph.num_nodes();
    let mut active = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut count = 0usize;

    for &s in seeds {
        let si = s as usize;
        if si < n && !active[si] {
            active[si] = true;
            count += 1;
            queue.push_back(s);
        }
    }

    while let Some(u) = queue.pop_front() {
        for eid in graph.out_edge_range(u) {
            let v = graph.edge_target(eid);
            let vi = v as usize;
            if !active[vi] && rng.gen::<f32>() < weights.weight(eid) {
                active[vi] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

/// Simulate one Linear Threshold cascade from `seeds`; returns the number of
/// activated vertices.
///
/// Every vertex draws a threshold uniformly from `[0, 1]`; a vertex activates
/// once the summed weight of its activated in-neighbors reaches the
/// threshold. The per-vertex accumulated weight is updated incrementally as
/// activations propagate.
pub fn simulate_lt<R: Rng + ?Sized>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    seeds: &[NodeId],
    rng: &mut R,
) -> usize {
    let n = graph.num_nodes();
    let mut active = vec![false; n];
    let mut accumulated = vec![0.0f32; n];
    let mut threshold = vec![0.0f32; n];
    for t in threshold.iter_mut() {
        *t = rng.gen::<f32>();
    }

    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut count = 0usize;
    for &s in seeds {
        let si = s as usize;
        if si < n && !active[si] {
            active[si] = true;
            count += 1;
            queue.push_back(s);
        }
    }

    while let Some(u) = queue.pop_front() {
        for eid in graph.out_edge_range(u) {
            let v = graph.edge_target(eid);
            let vi = v as usize;
            if active[vi] {
                continue;
            }
            accumulated[vi] += weights.weight(eid);
            if accumulated[vi] >= threshold[vi] {
                active[vi] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

/// Simulate one cascade under `model`.
pub fn simulate_spread<R: Rng + ?Sized>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    seeds: &[NodeId],
    rng: &mut R,
) -> usize {
    match model {
        DiffusionModel::IndependentCascade => simulate_ic(graph, weights, seeds, rng),
        DiffusionModel::LinearThreshold => simulate_lt(graph, weights, seeds, rng),
    }
}

/// Monte-Carlo estimate of `σ(seeds)`: the mean activation count over
/// `trials` independent cascades, simulated in parallel. Deterministic for a
/// fixed `seed` regardless of thread count (each trial derives its own RNG
/// from `seed` and the trial index).
pub fn monte_carlo_spread(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    seeds: &[NodeId],
    trials: usize,
    seed: u64,
) -> SpreadEstimate {
    if trials == 0 {
        return SpreadEstimate { mean: 0.0, std_dev: 0.0, trials: 0 };
    }
    let counts: Vec<usize> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng = SmallRng::seed_from_u64(
                seed.wrapping_add(t as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            simulate_spread(graph, weights, model, seeds, &mut rng)
        })
        .collect();

    let mean = counts.iter().sum::<usize>() as f64 / trials as f64;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / (trials.max(2) - 1) as f64;
    SpreadEstimate { mean, std_dev: var.sqrt(), trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imm_graph::generators;
    use imm_graph::WeightModel;

    fn star_graph(n: usize) -> (CsrGraph, EdgeWeights) {
        let g = CsrGraph::from_edge_list(&generators::star(n));
        let w = EdgeWeights::constant(&g, 1.0);
        (g, w)
    }

    #[test]
    fn ic_with_probability_one_activates_reachable_set() {
        let (g, w) = star_graph(10);
        let mut rng = SmallRng::seed_from_u64(1);
        // Seeding the hub reaches everything.
        assert_eq!(simulate_ic(&g, &w, &[0], &mut rng), 10);
        // Seeding a leaf reaches the leaf, the hub, and then everything.
        assert_eq!(simulate_ic(&g, &w, &[3], &mut rng), 10);
    }

    #[test]
    fn ic_with_probability_zero_activates_only_seeds() {
        let g = CsrGraph::from_edge_list(&generators::star(10));
        let w = EdgeWeights::constant(&g, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(simulate_ic(&g, &w, &[0, 5], &mut rng), 2);
    }

    #[test]
    fn duplicate_and_out_of_range_seeds_are_handled() {
        let (g, w) = star_graph(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let spread = simulate_ic(&g, &w, &[1, 1, 1], &mut rng);
        assert_eq!(spread, 5);
        // An out-of-range seed is ignored rather than panicking.
        let spread = simulate_ic(&g, &w, &[100], &mut rng);
        assert_eq!(spread, 0);
    }

    #[test]
    fn lt_with_full_weight_activates_chain() {
        // Path 0 -> 1 -> 2 -> 3 with weight 1.0: every threshold <= 1 is met.
        let g = CsrGraph::from_edge_list(&generators::path(4));
        let w = EdgeWeights::constant(&g, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(simulate_lt(&g, &w, &[0], &mut rng), 4);
    }

    #[test]
    fn lt_with_zero_weight_activates_only_seeds() {
        let g = CsrGraph::from_edge_list(&generators::path(4));
        let w = EdgeWeights::constant(&g, 0.0);
        let mut rng = SmallRng::seed_from_u64(5);
        // Thresholds are drawn from (0,1) so zero accumulated weight can
        // never reach them (probability of an exactly-zero threshold is 0).
        let spread = simulate_lt(&g, &w, &[0], &mut rng);
        assert!(spread <= 2, "got {spread}");
        assert!(spread >= 1);
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let (g, w) = star_graph(6);
        let mut rng = SmallRng::seed_from_u64(6);
        assert_eq!(simulate_ic(&g, &w, &[], &mut rng), 0);
        assert_eq!(simulate_lt(&g, &w, &[], &mut rng), 0);
    }

    #[test]
    fn monte_carlo_mean_matches_analytic_two_node_case() {
        // Single edge 0 -> 1 with p = 0.3: E[spread from {0}] = 1 + 0.3.
        let g = CsrGraph::from_edges(2, vec![(0, 1)]).unwrap();
        let w = EdgeWeights::from_vec(&g, vec![0.3], WeightModel::Constant).unwrap();
        let est = monte_carlo_spread(&g, &w, DiffusionModel::IndependentCascade, &[0], 20_000, 42);
        assert!((est.mean - 1.3).abs() < 0.02, "mean {}", est.mean);
        assert!(est.confidence_95() < 0.01);
    }

    #[test]
    fn monte_carlo_is_deterministic_for_a_seed() {
        let g = CsrGraph::from_edge_list(&generators::cycle(20));
        let w = EdgeWeights::constant(&g, 0.5);
        let a = monte_carlo_spread(&g, &w, DiffusionModel::IndependentCascade, &[0], 500, 7);
        let b = monte_carlo_spread(&g, &w, DiffusionModel::IndependentCascade, &[0], 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn monte_carlo_zero_trials() {
        let (g, w) = star_graph(4);
        let est = monte_carlo_spread(&g, &w, DiffusionModel::LinearThreshold, &[0], 0, 1);
        assert_eq!(est.trials, 0);
        assert_eq!(est.mean, 0.0);
    }

    #[test]
    fn seeding_the_hub_beats_seeding_a_leaf_on_average() {
        // Hub-and-spoke with moderate probability: the hub must have higher
        // spread than any single leaf under IC with directed hub->leaf edges
        // only.
        let n = 50usize;
        let el = imm_graph::EdgeList::from_pairs(n, (1..n as u32).map(|i| (0u32, i)));
        let g = CsrGraph::from_edge_list(&el);
        let w = EdgeWeights::constant(&g, 0.5);
        let hub = monte_carlo_spread(&g, &w, DiffusionModel::IndependentCascade, &[0], 2_000, 11);
        let leaf = monte_carlo_spread(&g, &w, DiffusionModel::IndependentCascade, &[1], 2_000, 11);
        assert!(hub.mean > 10.0 * leaf.mean, "hub {} leaf {}", hub.mean, leaf.mean);
    }

    #[test]
    fn lt_respects_in_weight_normalization() {
        // A vertex with two in-edges of weight 0.5 each: once both neighbors
        // are active it must activate (accumulated = 1.0 >= any threshold).
        let g = CsrGraph::from_edges(3, vec![(0, 2), (1, 2)]).unwrap();
        let w = EdgeWeights::from_vec(&g, vec![0.5, 0.5], WeightModel::LtNormalized).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..20 {
            assert_eq!(simulate_lt(&g, &w, &[0, 1], &mut rng), 3);
        }
    }
}

//! # imm-diffusion
//!
//! Diffusion-model substrate: forward simulation of the Independent Cascade
//! (IC) and Linear Threshold (LT) processes and Monte-Carlo estimation of the
//! influence spread `σ(S)`.
//!
//! The IMM algorithm itself never runs a forward cascade — it works entirely
//! on reverse-reachable sets — but forward simulation is the ground truth the
//! whole construction approximates, so the reproduction uses it to
//! (a) validate that the seeds chosen by both selection kernels have the
//! influence the RRR estimator claims they do, and (b) sanity-check that
//! EfficientIMM's optimizations do not change solution quality, which the
//! paper asserts ("without sacrificing the accuracy").

pub mod model;
pub mod simulate;

pub use model::DiffusionModel;
pub use simulate::{monte_carlo_spread, simulate_ic, simulate_lt, simulate_spread, SpreadEstimate};

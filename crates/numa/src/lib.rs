//! # imm-numa
//!
//! A software model of a multi-socket NUMA machine.
//!
//! The paper evaluates on a dual-socket AMD EPYC node with 8 NUMA domains and
//! relies on `numactl`/`mbind` to control where the graph, the RRR sets and
//! the visited bitmaps live. This environment has no NUMA hardware (and no
//! portable way to bind pages from safe Rust), so — per the reproduction's
//! substitution policy — the *placement decisions* and their consequences are
//! modelled in software:
//!
//! * [`Topology`] describes a machine as `nodes × cores_per_node`.
//! * [`PlacementPolicy`] mirrors the placements the paper compares:
//!   everything on one node (the default first-touch outcome that causes the
//!   bandwidth hot-spot), round-robin interleaving (`numactl --interleave`),
//!   and explicit thread-local binding (`mbind`, the paper's NUMA-aware
//!   design).
//! * [`NumaRegion`] records which node owns each page of a data structure.
//! * [`AccessTracker`] counts, per accessing core, how many reads/writes hit
//!   the local node vs. a remote node, and converts them into a modelled
//!   access-cost figure using a configurable remote-access penalty.
//!
//! The Table II experiment ("% of core time spent checking the visited
//! bitmap, original vs. NUMA-aware data structures") is reproduced by running
//! the instrumented sampling kernel once with [`PlacementPolicy::SingleNode`]
//! and once with [`PlacementPolicy::ThreadLocal`] placements and comparing
//! the modelled bitmap-access cost share.

//! Since the mmap store PR the model also has a *hardware-facing* edge:
//! [`Topology::detect`] probes the real machine's node count through
//! sysfs, [`pin_current_thread`] binds shard workers to their placed
//! cores via `sched_setaffinity`, and the [`metrics`] module exports the
//! `numa_*` placement counters the sharded runtime feeds.

pub mod metrics;
pub mod placement;
pub mod topology;
pub mod tracker;

pub use placement::{NumaRegion, PlacementPolicy, PAGE_BYTES};
pub use topology::{pin_current_thread, Topology};
pub use tracker::{AccessKind, AccessStats, AccessTracker, CostModel};

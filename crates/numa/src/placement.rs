//! Data-placement policies and the page→node map of a placed region.

use crate::topology::Topology;

/// Simulated page size. 4 KiB, matching the default small-page size the
/// paper's `numactl`/`mbind` calls operate on.
pub const PAGE_BYTES: usize = 4096;

/// Where the pages of a data structure are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PlacementPolicy {
    /// Every page on one node — the default first-touch outcome when a single
    /// thread initializes the structure; the configuration whose bandwidth
    /// hot-spot the paper's §IV-B diagnoses.
    SingleNode(usize),
    /// Pages distributed round-robin across all nodes
    /// (`numactl --interleave=all`).
    Interleaved,
    /// Each page bound to the node of the thread that will use it
    /// (`mbind` of thread-local structures — the paper's NUMA-aware design).
    /// The owner node is supplied per region at placement time.
    ThreadLocal(usize),
}

/// A placed memory region: which NUMA node owns each simulated page.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaRegion {
    /// Owner node per page.
    page_owner: Vec<usize>,
    /// Bytes per element of the logical array mapped onto this region.
    element_bytes: usize,
    /// Total bytes in the region.
    bytes: usize,
}

impl NumaRegion {
    /// Place a region of `elements` items, each `element_bytes` wide, under
    /// `policy` on `topology`.
    ///
    /// # Panics
    /// Panics if a policy references a node outside the topology or if
    /// `element_bytes` is zero.
    pub fn place(
        elements: usize,
        element_bytes: usize,
        policy: PlacementPolicy,
        topology: &Topology,
    ) -> Self {
        assert!(element_bytes > 0, "element size must be positive");
        let bytes = elements * element_bytes;
        let pages = bytes.div_ceil(PAGE_BYTES).max(1);
        let page_owner = match policy {
            PlacementPolicy::SingleNode(node) | PlacementPolicy::ThreadLocal(node) => {
                assert!(node < topology.num_nodes(), "placement node {node} out of range");
                vec![node; pages]
            }
            PlacementPolicy::Interleaved => (0..pages).map(|p| p % topology.num_nodes()).collect(),
        };
        NumaRegion { page_owner, element_bytes, bytes }
    }

    /// NUMA node owning element `index`.
    #[inline]
    pub fn node_of_element(&self, index: usize) -> usize {
        let byte = index * self.element_bytes;
        debug_assert!(byte < self.bytes || self.bytes == 0, "element {index} beyond region");
        let page = (byte / PAGE_BYTES).min(self.page_owner.len() - 1);
        self.page_owner[page]
    }

    /// NUMA node owning byte offset `byte`.
    #[inline]
    pub fn node_of_byte(&self, byte: usize) -> usize {
        let page = (byte / PAGE_BYTES).min(self.page_owner.len() - 1);
        self.page_owner[page]
    }

    /// Number of simulated pages.
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.page_owner.len()
    }

    /// Total bytes covered.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// How many pages each node owns (histogram indexed by node id, length =
    /// max owner + 1).
    pub fn pages_per_node(&self, num_nodes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_nodes];
        for &owner in &self.page_owner {
            counts[owner] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_places_everything_on_one_node() {
        let topo = Topology::new(4, 2);
        let r = NumaRegion::place(10_000, 4, PlacementPolicy::SingleNode(2), &topo);
        assert!(r.num_pages() >= 9);
        let per_node = r.pages_per_node(4);
        assert_eq!(per_node[2], r.num_pages());
        assert_eq!(per_node[0] + per_node[1] + per_node[3], 0);
        assert_eq!(r.node_of_element(0), 2);
        assert_eq!(r.node_of_element(9_999), 2);
    }

    #[test]
    fn interleaved_spreads_pages_evenly() {
        let topo = Topology::new(4, 2);
        // 64 KiB = 16 pages across 4 nodes -> 4 pages each.
        let r = NumaRegion::place(16 * 1024, 4, PlacementPolicy::Interleaved, &topo);
        assert_eq!(r.num_pages(), 16);
        assert_eq!(r.pages_per_node(4), vec![4, 4, 4, 4]);
    }

    #[test]
    fn interleaved_element_owner_follows_pages() {
        let topo = Topology::new(2, 1);
        let r = NumaRegion::place(4096, 4, PlacementPolicy::Interleaved, &topo);
        // 16 KiB = 4 pages: elements 0..1023 page 0 (node 0), 1024..2047 page 1 (node 1)...
        assert_eq!(r.node_of_element(0), 0);
        assert_eq!(r.node_of_element(1023), 0);
        assert_eq!(r.node_of_element(1024), 1);
        assert_eq!(r.node_of_element(2048), 0);
    }

    #[test]
    fn thread_local_binds_to_owner() {
        let topo = Topology::new(8, 16);
        let r = NumaRegion::place(100, 8, PlacementPolicy::ThreadLocal(5), &topo);
        assert_eq!(r.node_of_element(50), 5);
    }

    #[test]
    fn tiny_region_still_has_one_page() {
        let topo = Topology::new(2, 2);
        let r = NumaRegion::place(1, 1, PlacementPolicy::Interleaved, &topo);
        assert_eq!(r.num_pages(), 1);
        assert_eq!(r.node_of_element(0), 0);
    }

    #[test]
    fn byte_and_element_addressing_agree() {
        let topo = Topology::new(4, 1);
        let r = NumaRegion::place(10_000, 8, PlacementPolicy::Interleaved, &topo);
        for idx in [0usize, 100, 511, 512, 5_000, 9_999] {
            assert_eq!(r.node_of_element(idx), r.node_of_byte(idx * 8));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn placement_on_missing_node_panics() {
        let topo = Topology::new(2, 2);
        NumaRegion::place(10, 4, PlacementPolicy::SingleNode(7), &topo);
    }
}

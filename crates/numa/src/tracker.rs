//! Per-core local/remote access accounting and the modelled access cost.
//!
//! The tracker is deliberately simple: every recorded access is classified as
//! local (the accessing core's node owns the page) or remote, and a
//! [`CostModel`] turns the two counts into a single modelled cost figure
//! (remote accesses are a configurable factor more expensive, reflecting the
//! inter-socket latency/bandwidth gap the paper's §IV-B discusses).

use crate::placement::NumaRegion;
use crate::topology::Topology;

/// Read or write — tracked separately because the paper's counter-update
/// kernel is write-heavy while the bitmap check is read-heavy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (including atomic read-modify-write).
    Write,
}

/// Aggregated access counts for one core (or one thread pinned to a core).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AccessStats {
    /// Loads that hit the local NUMA node.
    pub local_reads: u64,
    /// Loads served by a remote node.
    pub remote_reads: u64,
    /// Stores to the local node.
    pub local_writes: u64,
    /// Stores to a remote node.
    pub remote_writes: u64,
}

impl AccessStats {
    /// Total accesses of any kind.
    pub fn total(&self) -> u64 {
        self.local_reads + self.remote_reads + self.local_writes + self.remote_writes
    }

    /// Total remote accesses.
    pub fn remote(&self) -> u64 {
        self.remote_reads + self.remote_writes
    }

    /// Fraction of accesses that were remote (0 when there were none).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.remote() as f64 / total as f64
        }
    }

    /// Merge another core's stats into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.local_reads += other.local_reads;
        self.remote_reads += other.remote_reads;
        self.local_writes += other.local_writes;
        self.remote_writes += other.remote_writes;
    }
}

/// Converts access counts into a modelled cost (arbitrary "cycles" units).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Cost of an access that stays on the local node.
    pub local_cost: f64,
    /// Cost of an access that crosses to a remote node. The ~2–3× local
    /// figure is the usual inter-socket latency ratio on EPYC-class parts.
    pub remote_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { local_cost: 1.0, remote_cost: 2.5 }
    }
}

impl CostModel {
    /// Modelled cost of the given stats.
    pub fn cost(&self, stats: &AccessStats) -> f64 {
        (stats.local_reads + stats.local_writes) as f64 * self.local_cost
            + (stats.remote_reads + stats.remote_writes) as f64 * self.remote_cost
    }
}

/// Records accesses issued by cores against placed regions.
#[derive(Debug, Clone)]
pub struct AccessTracker {
    topology: Topology,
    per_core: Vec<AccessStats>,
}

impl AccessTracker {
    /// Tracker for `topology`.
    pub fn new(topology: Topology) -> Self {
        AccessTracker { topology, per_core: vec![AccessStats::default(); topology.num_cores()] }
    }

    /// The topology this tracker was built for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Record an access from `core` to element `index` of `region`.
    #[inline]
    pub fn record(&mut self, core: usize, region: &NumaRegion, index: usize, kind: AccessKind) {
        let target_node = region.node_of_element(index);
        self.record_to_node(core, target_node, kind);
    }

    /// Record an access from `core` straight to a node (when the caller
    /// already resolved the page owner).
    #[inline]
    pub fn record_to_node(&mut self, core: usize, target_node: usize, kind: AccessKind) {
        let local = self.topology.node_of_core(core) == target_node;
        let stats = &mut self.per_core[core];
        match (kind, local) {
            (AccessKind::Read, true) => stats.local_reads += 1,
            (AccessKind::Read, false) => stats.remote_reads += 1,
            (AccessKind::Write, true) => stats.local_writes += 1,
            (AccessKind::Write, false) => stats.remote_writes += 1,
        }
    }

    /// Record `count` identical accesses at once (bulk accounting for tight
    /// loops that would otherwise spend more time tracking than working).
    pub fn record_bulk(
        &mut self,
        core: usize,
        region: &NumaRegion,
        index: usize,
        kind: AccessKind,
        count: u64,
    ) {
        let target_node = region.node_of_element(index);
        let local = self.topology.node_of_core(core) == target_node;
        let stats = &mut self.per_core[core];
        match (kind, local) {
            (AccessKind::Read, true) => stats.local_reads += count,
            (AccessKind::Read, false) => stats.remote_reads += count,
            (AccessKind::Write, true) => stats.local_writes += count,
            (AccessKind::Write, false) => stats.remote_writes += count,
        }
    }

    /// Stats of one core.
    pub fn core_stats(&self, core: usize) -> &AccessStats {
        &self.per_core[core]
    }

    /// Aggregate stats over all cores.
    pub fn total(&self) -> AccessStats {
        let mut agg = AccessStats::default();
        for s in &self.per_core {
            agg.merge(s);
        }
        agg
    }

    /// Aggregate stats per NUMA node of the *accessing* core.
    pub fn per_node(&self) -> Vec<AccessStats> {
        let mut out = vec![AccessStats::default(); self.topology.num_nodes()];
        for (core, s) in self.per_core.iter().enumerate() {
            out[self.topology.node_of_core(core)].merge(s);
        }
        out
    }

    /// Merge another tracker (e.g. one per worker thread) into this one.
    ///
    /// # Panics
    /// Panics if the topologies differ.
    pub fn merge(&mut self, other: &AccessTracker) {
        assert_eq!(self.topology, other.topology, "cannot merge trackers of different machines");
        for (mine, theirs) in self.per_core.iter_mut().zip(other.per_core.iter()) {
            mine.merge(theirs);
        }
    }

    /// Reset all counters.
    pub fn reset(&mut self) {
        for s in &mut self.per_core {
            *s = AccessStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;

    fn topo() -> Topology {
        Topology::new(2, 2) // cores 0,1 on node 0; cores 2,3 on node 1
    }

    #[test]
    fn local_vs_remote_classification() {
        let t = topo();
        let region_on_0 = NumaRegion::place(1024, 4, PlacementPolicy::SingleNode(0), &t);
        let mut tracker = AccessTracker::new(t);

        tracker.record(0, &region_on_0, 5, AccessKind::Read); // core 0 -> node 0: local
        tracker.record(3, &region_on_0, 5, AccessKind::Read); // core 3 -> node 0: remote
        tracker.record(3, &region_on_0, 7, AccessKind::Write); // remote write

        assert_eq!(tracker.core_stats(0).local_reads, 1);
        assert_eq!(tracker.core_stats(0).remote_reads, 0);
        assert_eq!(tracker.core_stats(3).remote_reads, 1);
        assert_eq!(tracker.core_stats(3).remote_writes, 1);

        let total = tracker.total();
        assert_eq!(total.total(), 3);
        assert_eq!(total.remote(), 2);
        assert!((total.remote_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interleaved_region_halves_remote_accesses() {
        let t = topo();
        // Large region, interleaved over 2 nodes: a core touching random
        // elements should see ~50% local.
        let region = NumaRegion::place(1 << 16, 4, PlacementPolicy::Interleaved, &t);
        let mut tracker = AccessTracker::new(t);
        for i in 0..(1 << 16) {
            tracker.record(0, &region, i, AccessKind::Read);
        }
        let stats = tracker.core_stats(0);
        let frac = stats.remote_fraction();
        assert!((frac - 0.5).abs() < 0.05, "remote fraction {frac}");
    }

    #[test]
    fn thread_local_region_is_all_local_for_owner() {
        let t = topo();
        let region = NumaRegion::place(4096, 4, PlacementPolicy::ThreadLocal(1), &t);
        let mut tracker = AccessTracker::new(t);
        for i in 0..1000 {
            tracker.record(2, &region, i, AccessKind::Write); // core 2 is on node 1
        }
        assert_eq!(tracker.core_stats(2).remote_writes, 0);
        assert_eq!(tracker.core_stats(2).local_writes, 1000);
    }

    #[test]
    fn cost_model_penalizes_remote() {
        let model = CostModel::default();
        let local_only = AccessStats { local_reads: 100, ..Default::default() };
        let remote_only = AccessStats { remote_reads: 100, ..Default::default() };
        assert!(model.cost(&remote_only) > 2.0 * model.cost(&local_only));
    }

    #[test]
    fn bulk_recording_matches_individual() {
        let t = topo();
        let region = NumaRegion::place(128, 4, PlacementPolicy::SingleNode(0), &t);
        let mut a = AccessTracker::new(t);
        let mut b = AccessTracker::new(t);
        for _ in 0..50 {
            a.record(1, &region, 3, AccessKind::Write);
        }
        b.record_bulk(1, &region, 3, AccessKind::Write, 50);
        assert_eq!(a.core_stats(1), b.core_stats(1));
    }

    #[test]
    fn merge_and_reset() {
        let t = topo();
        let region = NumaRegion::place(128, 4, PlacementPolicy::SingleNode(1), &t);
        let mut a = AccessTracker::new(t);
        let mut b = AccessTracker::new(t);
        a.record(0, &region, 0, AccessKind::Read);
        b.record(0, &region, 0, AccessKind::Read);
        a.merge(&b);
        assert_eq!(a.core_stats(0).remote_reads, 2);
        a.reset();
        assert_eq!(a.total().total(), 0);
    }

    #[test]
    fn per_node_aggregation() {
        let t = topo();
        let region = NumaRegion::place(128, 4, PlacementPolicy::SingleNode(0), &t);
        let mut tracker = AccessTracker::new(t);
        tracker.record(0, &region, 0, AccessKind::Read); // node 0 core
        tracker.record(1, &region, 0, AccessKind::Read); // node 0 core
        tracker.record(2, &region, 0, AccessKind::Read); // node 1 core (remote)
        let per_node = tracker.per_node();
        assert_eq!(per_node[0].local_reads, 2);
        assert_eq!(per_node[1].remote_reads, 1);
    }
}

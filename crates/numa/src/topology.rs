//! Machine topology: NUMA nodes and the cores that belong to them.

/// A NUMA machine description: `nodes` memory domains with
/// `cores_per_node` cores each, numbered so that core `c` belongs to node
/// `c / cores_per_node` (the same contiguous mapping `numactl --hardware`
/// reports for the EPYC system in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    nodes: usize,
    cores_per_node: usize,
}

impl Topology {
    /// Create a topology.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0, "need at least one NUMA node");
        assert!(cores_per_node > 0, "need at least one core per node");
        Topology { nodes, cores_per_node }
    }

    /// The paper's evaluation machine: 8 NUMA nodes × 16 cores = 128 cores.
    pub fn perlmutter_node() -> Self {
        Topology::new(8, 16)
    }

    /// Single node with `cores` cores (the "older CPU model" the paper
    /// contrasts against, and the degenerate no-NUMA case).
    pub fn uma(cores: usize) -> Self {
        Topology::new(1, cores)
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Cores per NUMA node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total core count.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// NUMA node that owns core `core`.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    #[inline]
    pub fn node_of_core(&self, core: usize) -> usize {
        assert!(core < self.num_cores(), "core {core} out of range");
        core / self.cores_per_node
    }

    /// The cores belonging to `node` as a range.
    pub fn cores_of_node(&self, node: usize) -> std::ops::Range<usize> {
        assert!(node < self.nodes, "node {node} out of range");
        let start = node * self.cores_per_node;
        start..start + self.cores_per_node
    }

    /// Detect the topology of the machine this process runs on.
    ///
    /// On Linux, counts the `node<N>` directories under
    /// `/sys/devices/system/node` and divides the online cores evenly
    /// among them (the kernel's contiguous core→node numbering for the
    /// machines this reproduction targets). Anywhere the sysfs probe is
    /// unavailable — non-Linux targets, containers that mask sysfs — the
    /// result degrades to a single-node [`Topology::uma`] machine, which
    /// downstream placement treats as "skip placement, count the
    /// fallback".
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let nodes = detect_node_count().max(1).min(cores);
        Topology::new(nodes, (cores / nodes).max(1))
    }

    /// Restrict a thread-count to the machine and map thread `t` (of
    /// `threads`) to a core, spreading threads round-robin across nodes first
    /// — the compact-then-spread placement used when benchmarking strong
    /// scaling so that low thread counts still exercise several NUMA domains.
    pub fn core_for_thread(&self, thread: usize, threads: usize) -> usize {
        let threads = threads.max(1);
        let t = thread % threads.min(self.num_cores()).max(1);
        // Spread: thread t goes to node (t % nodes), slot (t / nodes).
        let node = t % self.nodes;
        let slot = (t / self.nodes) % self.cores_per_node;
        node * self.cores_per_node + slot
    }
}

/// Count NUMA node directories in sysfs (`node0`, `node1`, …).
#[cfg(target_os = "linux")]
fn detect_node_count() -> usize {
    let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else { return 1 };
    entries
        .flatten()
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_prefix("node")
                .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
        })
        .count()
}

#[cfg(not(target_os = "linux"))]
fn detect_node_count() -> usize {
    1
}

/// Pin the calling thread to `core`, returning whether the kernel
/// accepted the affinity mask.
///
/// Uses `sched_setaffinity(0, …)` directly (pid 0 = the calling thread)
/// so the placement layer needs no external dependency. On non-Linux
/// targets, or for cores beyond the mask width, this is a no-op returning
/// `false` — placement is advisory and the caller only counts outcomes.
pub fn pin_current_thread(core: usize) -> bool {
    pin_impl(core)
}

#[cfg(target_os = "linux")]
fn pin_impl(core: usize) -> bool {
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16]; // room for 1024 CPUs
    if core >= mask.len() * 64 {
        return false;
    }
    mask[core / 64] = 1u64 << (core % 64);
    // SAFETY: pid 0 addresses the calling thread; the mask pointer and
    // its byte length describe a live, properly sized local buffer.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perlmutter_topology_matches_paper() {
        let t = Topology::perlmutter_node();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_cores(), 128);
        assert_eq!(t.cores_per_node(), 16);
    }

    #[test]
    fn node_of_core_is_contiguous() {
        let t = Topology::new(4, 4);
        assert_eq!(t.node_of_core(0), 0);
        assert_eq!(t.node_of_core(3), 0);
        assert_eq!(t.node_of_core(4), 1);
        assert_eq!(t.node_of_core(15), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_core_out_of_range_panics() {
        Topology::new(2, 2).node_of_core(4);
    }

    #[test]
    fn cores_of_node_round_trips() {
        let t = Topology::new(4, 8);
        for node in 0..4 {
            for core in t.cores_of_node(node) {
                assert_eq!(t.node_of_core(core), node);
            }
        }
    }

    #[test]
    fn uma_is_single_node() {
        let t = Topology::uma(16);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.node_of_core(7), 0);
    }

    #[test]
    fn thread_mapping_spreads_across_nodes() {
        let t = Topology::new(4, 4);
        // First 4 threads should land on 4 distinct nodes.
        let nodes: std::collections::HashSet<_> =
            (0..4).map(|th| t.node_of_core(t.core_for_thread(th, 4))).collect();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn thread_mapping_is_within_range() {
        let t = Topology::new(8, 16);
        for threads in [1usize, 2, 7, 64, 128, 200] {
            for th in 0..threads {
                assert!(t.core_for_thread(th, threads) < t.num_cores());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_nodes_rejected() {
        Topology::new(0, 4);
    }

    #[test]
    fn detect_yields_a_valid_topology() {
        let t = Topology::detect();
        assert!(t.num_nodes() >= 1);
        assert!(t.cores_per_node() >= 1);
        // Nodes never outnumber cores: detect() clamps.
        assert!(t.num_nodes() <= t.num_cores());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_core_zero_succeeds_and_out_of_mask_fails() {
        // Core 0 always exists; the pin is advisory for the test
        // process, so restore a wide mask afterwards by pinning to every
        // core is unnecessary — the thread dies with the test.
        assert!(pin_current_thread(0));
        assert!(!pin_current_thread(16 * 64), "beyond the mask width must refuse");
    }
}

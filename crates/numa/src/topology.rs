//! Machine topology: NUMA nodes and the cores that belong to them.

/// A NUMA machine description: `nodes` memory domains with
/// `cores_per_node` cores each, numbered so that core `c` belongs to node
/// `c / cores_per_node` (the same contiguous mapping `numactl --hardware`
/// reports for the EPYC system in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    nodes: usize,
    cores_per_node: usize,
}

impl Topology {
    /// Create a topology.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0, "need at least one NUMA node");
        assert!(cores_per_node > 0, "need at least one core per node");
        Topology { nodes, cores_per_node }
    }

    /// The paper's evaluation machine: 8 NUMA nodes × 16 cores = 128 cores.
    pub fn perlmutter_node() -> Self {
        Topology::new(8, 16)
    }

    /// Single node with `cores` cores (the "older CPU model" the paper
    /// contrasts against, and the degenerate no-NUMA case).
    pub fn uma(cores: usize) -> Self {
        Topology::new(1, cores)
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Cores per NUMA node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total core count.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// NUMA node that owns core `core`.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    #[inline]
    pub fn node_of_core(&self, core: usize) -> usize {
        assert!(core < self.num_cores(), "core {core} out of range");
        core / self.cores_per_node
    }

    /// The cores belonging to `node` as a range.
    pub fn cores_of_node(&self, node: usize) -> std::ops::Range<usize> {
        assert!(node < self.nodes, "node {node} out of range");
        let start = node * self.cores_per_node;
        start..start + self.cores_per_node
    }

    /// Restrict a thread-count to the machine and map thread `t` (of
    /// `threads`) to a core, spreading threads round-robin across nodes first
    /// — the compact-then-spread placement used when benchmarking strong
    /// scaling so that low thread counts still exercise several NUMA domains.
    pub fn core_for_thread(&self, thread: usize, threads: usize) -> usize {
        let threads = threads.max(1);
        let t = thread % threads.min(self.num_cores()).max(1);
        // Spread: thread t goes to node (t % nodes), slot (t / nodes).
        let node = t % self.nodes;
        let slot = (t / self.nodes) % self.cores_per_node;
        node * self.cores_per_node + slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perlmutter_topology_matches_paper() {
        let t = Topology::perlmutter_node();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_cores(), 128);
        assert_eq!(t.cores_per_node(), 16);
    }

    #[test]
    fn node_of_core_is_contiguous() {
        let t = Topology::new(4, 4);
        assert_eq!(t.node_of_core(0), 0);
        assert_eq!(t.node_of_core(3), 0);
        assert_eq!(t.node_of_core(4), 1);
        assert_eq!(t.node_of_core(15), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_core_out_of_range_panics() {
        Topology::new(2, 2).node_of_core(4);
    }

    #[test]
    fn cores_of_node_round_trips() {
        let t = Topology::new(4, 8);
        for node in 0..4 {
            for core in t.cores_of_node(node) {
                assert_eq!(t.node_of_core(core), node);
            }
        }
    }

    #[test]
    fn uma_is_single_node() {
        let t = Topology::uma(16);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.node_of_core(7), 0);
    }

    #[test]
    fn thread_mapping_spreads_across_nodes() {
        let t = Topology::new(4, 4);
        // First 4 threads should land on 4 distinct nodes.
        let nodes: std::collections::HashSet<_> =
            (0..4).map(|th| t.node_of_core(t.core_for_thread(th, 4))).collect();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn thread_mapping_is_within_range() {
        let t = Topology::new(8, 16);
        for threads in [1usize, 2, 7, 64, 128, 200] {
            for th in 0..threads {
                assert!(t.core_for_thread(th, threads) < t.num_cores());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_nodes_rejected() {
        Topology::new(0, 4);
    }
}

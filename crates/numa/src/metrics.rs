//! NUMA placement observability: `numa_*` counters and gauges.
//!
//! The placement layer is advisory — on a single-node machine (or a
//! non-Linux target) the sharded runtime falls back to unplaced workers —
//! so these metrics are the only way to *see* which regime a process is
//! in. `numa_topology_nodes` says what the machine looks like,
//! `numa_worker_pinnings` / `numa_single_node_fallbacks` say what the
//! runtime did about it, and the local/remote access counters say whether
//! the placement actually worked (shard cells served by their own node's
//! worker vs. stolen cross-node).

use std::sync::Once;

pub use imm_obs::Counter;
use imm_obs::{Gauge, Metric, Unit};

/// NUMA nodes the detected (or injected) topology exposes. `1` means the
/// placement layer is in its explicit single-node fallback regime.
pub static TOPOLOGY_NODES: Gauge = Gauge::new(
    "numa_topology_nodes",
    "NUMA nodes in the topology the sharded runtime placed workers on",
    Unit::Count,
);

/// Shard workers pinned to a core by the placement layer (counts pin
/// attempts on worker start, including supervised respawns).
pub static WORKER_PINNINGS: Counter = Counter::new(
    "numa_worker_pinnings",
    "Shard worker threads pinned to a NUMA-placed core on start",
);

/// Pinned requests served by a worker on the same node as the shard's
/// placement — the placement hit counter.
pub static LOCAL_ACCESSES: Counter = Counter::new(
    "numa_local_accesses",
    "Shard requests served by a worker on the shard's own NUMA node",
);

/// Pinned requests served cross-node (a remote worker, the gathering
/// thread's inline path, or help-draining) — the placement miss counter.
pub static REMOTE_ACCESSES: Counter = Counter::new(
    "numa_remote_accesses",
    "Shard requests served from a different NUMA node than the shard's placement",
);

/// Times the runtime skipped placement because the topology has a single
/// node. The acceptance signal on machines without NUMA hardware.
pub static SINGLE_NODE_FALLBACKS: Counter = Counter::new(
    "numa_single_node_fallbacks",
    "Shard runtimes that skipped NUMA placement on a single-node topology",
);

/// Per-shard scratch regions placed node-locally (marks bitmaps and
/// other worker-private working sets).
pub static SCRATCH_REGIONS: Counter = Counter::new(
    "numa_scratch_regions",
    "Per-shard scratch regions placed on the owning worker's NUMA node",
);

/// Every counter this crate exports, in registration order.
pub fn registry() -> Vec<&'static Counter> {
    vec![
        &WORKER_PINNINGS,
        &LOCAL_ACCESSES,
        &REMOTE_ACCESSES,
        &SINGLE_NODE_FALLBACKS,
        &SCRATCH_REGIONS,
    ]
}

/// Register the `numa_*` metrics with the process-global `imm-obs`
/// registry. Idempotent; called when a topology is detected, never on a
/// hot path.
pub fn register() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut metrics: Vec<&'static dyn Metric> =
            registry().into_iter().map(|c| c as &'static dyn Metric).collect();
        metrics.push(&TOPOLOGY_NODES as &'static dyn Metric);
        imm_obs::register(&metrics);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_prefixed_and_unique() {
        let mut names: Vec<&str> = registry().iter().map(|c| c.name()).collect();
        names.push(TOPOLOGY_NODES.name());
        for name in &names {
            assert!(name.starts_with("numa_"), "{name} must carry the numa_ prefix");
        }
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "metric names must be unique");
    }

    #[test]
    fn register_feeds_the_global_obs_registry() {
        register();
        register(); // idempotent
        let names: Vec<&str> = imm_obs::snapshot().iter().map(|s| s.name).collect();
        for c in registry() {
            assert!(names.contains(&c.name()), "{} missing from imm-obs registry", c.name());
        }
        assert!(names.contains(&TOPOLOGY_NODES.name()));
    }
}

//! Dynamic job balancing (§IV-C of the paper).
//!
//! RRR-set sizes vary by orders of magnitude on skewed graphs, so a static
//! `θ/p` split leaves threads idle while one unlucky worker drains a batch of
//! giant sets. The paper's remedy is a producer-consumer scheme in which
//! threads pull fixed-size job batches from a shared queue as they finish.
//!
//! [`run_jobs`] executes `total` jobs on a rayon pool under either schedule;
//! the worker closure receives `(worker index, job range)` so callers can
//! keep per-worker scratch state (RNGs, local collections, work counters)
//! and preserve the locality benefits the paper notes ("while still
//! preserving the advantages of locality … within each job batch").

use imm_graph::{block_ranges, Range};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How jobs are distributed over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Schedule {
    /// One contiguous `total/p` block per worker, fixed up front (the
    /// Ripples-style split).
    Static,
    /// Workers repeatedly claim the next `chunk` jobs from a shared cursor
    /// until the queue is empty (the paper's dynamic balancing).
    Dynamic {
        /// Jobs claimed per pull.
        chunk: usize,
    },
}

/// A shared queue of job indices `[0, total)` handed out in chunks.
#[derive(Debug)]
pub struct JobQueue {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl JobQueue {
    /// Queue over `total` jobs with the given chunk size.
    pub fn new(total: usize, chunk: usize) -> Self {
        JobQueue { next: AtomicUsize::new(0), total, chunk: chunk.max(1) }
    }

    /// Claim the next chunk. Returns `None` once all jobs are handed out.
    pub fn claim(&self) -> Option<Range> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(Range { start, end: (start + self.chunk).min(self.total) })
    }

    /// Number of jobs in the queue (claimed or not).
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Execute `total` jobs on `pool` with `threads` workers under `schedule`.
///
/// The worker closure is called as `worker(slot, range)` where `slot` is
/// always in `[0, threads)`; ranges never overlap and together cover
/// `[0, total)` exactly once.
///
/// Under the static schedule `slot` is the owning worker's index. Under the
/// dynamic schedule it is the chunk ordinal modulo `threads` — the slot a
/// perfectly balanced dynamic scheduler would hand the chunk to. Callers use
/// the slot for per-worker accounting (work profiles, scratch buffers), so
/// attribution stays deterministic and meaningful even when the physical
/// machine has fewer cores than requested workers and one OS thread happens
/// to drain most of the queue. Shared per-slot state must still be
/// synchronized (two workers can execute chunks with the same slot
/// concurrently).
pub fn run_jobs<F>(
    pool: &rayon::ThreadPool,
    threads: usize,
    total: usize,
    schedule: Schedule,
    worker: F,
) where
    F: Fn(usize, Range) + Sync,
{
    let threads = threads.max(1);
    if total == 0 {
        return;
    }
    match schedule {
        Schedule::Static => {
            let ranges = block_ranges(total, threads);
            pool.scope(|s| {
                for (worker_idx, range) in ranges.into_iter().enumerate() {
                    if range.is_empty() {
                        continue;
                    }
                    let worker = &worker;
                    s.spawn(move |_| worker(worker_idx, range));
                }
            });
        }
        Schedule::Dynamic { chunk } => {
            // Clamp the batch size so small job counts still spread across
            // all workers: a chunk bigger than total/(4·threads) would leave
            // most of the pool idle while one worker drains the queue.
            let chunk = chunk.min((total / (4 * threads)).max(1));
            let queue = JobQueue::new(total, chunk);
            pool.scope(|s| {
                for _ in 0..threads {
                    let queue = &queue;
                    let worker = &worker;
                    s.spawn(move |_| {
                        while let Some(range) = queue.claim() {
                            let slot = (range.start / chunk) % threads;
                            worker(slot, range);
                        }
                    });
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashSet;

    fn pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap()
    }

    #[test]
    fn job_queue_hands_out_disjoint_full_coverage() {
        let q = JobQueue::new(100, 7);
        let mut seen = HashSet::new();
        while let Some(r) = q.claim() {
            for i in r.iter() {
                assert!(seen.insert(i), "job {i} handed out twice");
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn job_queue_empty() {
        let q = JobQueue::new(0, 4);
        assert!(q.claim().is_none());
    }

    #[test]
    fn job_queue_chunk_of_zero_is_clamped() {
        let q = JobQueue::new(3, 0);
        assert_eq!(q.claim(), Some(Range { start: 0, end: 1 }));
    }

    fn check_coverage(schedule: Schedule, total: usize, threads: usize) {
        let p = pool(threads);
        let seen = Mutex::new(vec![0u32; total]);
        run_jobs(&p, threads, total, schedule, |_, range| {
            let mut guard = seen.lock();
            for i in range.iter() {
                guard[i] += 1;
            }
        });
        let seen = seen.into_inner();
        assert!(seen.iter().all(|&c| c == 1), "every job must run exactly once: {seen:?}");
    }

    #[test]
    fn static_schedule_covers_all_jobs_exactly_once() {
        check_coverage(Schedule::Static, 257, 4);
        check_coverage(Schedule::Static, 3, 8);
        check_coverage(Schedule::Static, 0, 4);
    }

    #[test]
    fn dynamic_schedule_covers_all_jobs_exactly_once() {
        check_coverage(Schedule::Dynamic { chunk: 10 }, 257, 4);
        check_coverage(Schedule::Dynamic { chunk: 1 }, 33, 8);
        check_coverage(Schedule::Dynamic { chunk: 1000 }, 10, 2);
    }

    #[test]
    fn dynamic_schedule_balances_skewed_work() {
        // Job i costs ~i, so a static split gives the last worker far more
        // work. With dynamic chunks the per-worker totals must be close.
        let threads = 4;
        let total = 400usize;
        let p = pool(threads);
        let per_worker = Mutex::new(vec![0u64; threads]);
        run_jobs(&p, threads, total, Schedule::Dynamic { chunk: 4 }, |w, range| {
            // Simulate work proportional to the job index.
            let mut acc = 0u64;
            for i in range.iter() {
                for j in 0..i {
                    acc = acc.wrapping_add(j as u64);
                }
            }
            std::hint::black_box(acc);
            let cost: u64 = range.iter().map(|i| i as u64).sum();
            per_worker.lock()[w] += cost;
        });
        let per_worker = per_worker.into_inner();
        let total_cost: u64 = per_worker.iter().sum();
        let expected: u64 = (0..total as u64).sum();
        assert_eq!(total_cost, expected);
    }

    #[test]
    fn worker_indices_stay_in_range() {
        let threads = 3;
        let p = pool(threads);
        let max_seen = Mutex::new(0usize);
        run_jobs(&p, threads, 50, Schedule::Dynamic { chunk: 5 }, |w, _| {
            let mut guard = max_seen.lock();
            *guard = (*guard).max(w);
        });
        assert!(*max_seen.lock() < threads);
    }
}

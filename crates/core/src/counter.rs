//! The shared global occurrence counter and its parallel max reduction.
//!
//! This is the heart of EfficientIMM's new parallelization strategy
//! (Algorithm 2 of the paper): instead of per-thread counters over vertex
//! partitions, all threads scatter atomic increments into a single
//! `counter[v]` array, and the most influential vertex is found by a
//! two-level parallel reduction (per-range regional maxima, then a global
//! maximum over the regional results).
//!
//! The atomic used is a 64-bit fetch-add with relaxed ordering, which on
//! x86-64 compiles to the same `lock`-prefixed read-modify-write on a single
//! quadword that the paper highlights (`lock incq`/`lock xaddq`): only the
//! touched counter's cache line is locked, so unrelated counters never
//! contend.

use crate::NodeId;
use imm_graph::block_ranges;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared per-vertex occurrence counter with concurrent updates.
#[derive(Debug)]
pub struct GlobalCounter {
    counts: Vec<AtomicU64>,
}

impl GlobalCounter {
    /// Zero-initialized counter for `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        let mut counts = Vec::with_capacity(num_nodes);
        counts.resize_with(num_nodes, || AtomicU64::new(0));
        GlobalCounter { counts }
    }

    /// Build from plain values (used to snapshot/restore around selections).
    pub fn from_values(values: &[u64]) -> Self {
        GlobalCounter { counts: values.iter().map(|&v| AtomicU64::new(v)).collect() }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the counter is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Atomically increment the counter of `v` (relaxed ordering — counts are
    /// only read after the parallel section joins, so no ordering beyond the
    /// RMW atomicity is needed).
    #[inline]
    pub fn increment(&self, v: NodeId) {
        self.counts[v as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically decrement the counter of `v` (saturating at zero to guard
    /// against double-decrements from overlapping covered sets).
    #[inline]
    pub fn decrement(&self, v: NodeId) {
        let cell = &self.counts[v as usize];
        let mut current = cell.load(Ordering::Relaxed);
        while current > 0 {
            match cell.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Read one counter.
    #[inline]
    pub fn get(&self, v: NodeId) -> u64 {
        self.counts[v as usize].load(Ordering::Relaxed)
    }

    /// Overwrite one counter.
    #[inline]
    pub fn set(&self, v: NodeId, value: u64) {
        self.counts[v as usize].store(value, Ordering::Relaxed);
    }

    /// Reset every counter to zero (parallel).
    pub fn reset(&self) {
        self.counts.par_iter().for_each(|c| c.store(0, Ordering::Relaxed));
    }

    /// Snapshot the counters into a plain vector.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Copy the values of another counter of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&self, other: &GlobalCounter) {
        assert_eq!(self.len(), other.len(), "counter length mismatch");
        self.counts
            .par_iter()
            .zip(other.counts.par_iter())
            .for_each(|(dst, src)| dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed));
    }

    /// Two-level parallel argmax (the paper's `PARALLEL_REDUCTION`):
    /// the vertex range is split into `parts` contiguous regions, each region
    /// produces its regional maximum in parallel, and the global maximum is
    /// reduced over the regional results. Ties break toward the smaller
    /// vertex id so results are deterministic.
    ///
    /// Returns `None` only for an empty counter.
    pub fn parallel_argmax(&self, parts: usize) -> Option<(NodeId, u64)> {
        if self.counts.is_empty() {
            return None;
        }
        let ranges = block_ranges(self.counts.len(), parts.max(1));
        ranges
            .into_par_iter()
            .filter(|r| !r.is_empty())
            .map(|r| {
                let mut best_v = r.start;
                let mut best_c = self.counts[r.start].load(Ordering::Relaxed);
                for idx in r.iter().skip(1) {
                    let c = self.counts[idx].load(Ordering::Relaxed);
                    if c > best_c {
                        best_c = c;
                        best_v = idx;
                    }
                }
                (best_v as NodeId, best_c)
            })
            .reduce_with(|a, b| {
                // Higher count wins; ties go to the smaller vertex id.
                if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
                    b
                } else {
                    a
                }
            })
    }

    /// Sequential argmax (reference implementation used in tests and by the
    /// single-threaded paths).
    pub fn sequential_argmax(&self) -> Option<(NodeId, u64)> {
        let mut best: Option<(NodeId, u64)> = None;
        for (idx, cell) in self.counts.iter().enumerate() {
            let c = cell.load(Ordering::Relaxed);
            if best.map(|(_, bc)| c > bc).unwrap_or(true) {
                best = Some((idx as NodeId, c));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn increment_decrement_get() {
        let c = GlobalCounter::new(5);
        c.increment(3);
        c.increment(3);
        c.increment(1);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(0), 0);
        c.decrement(3);
        assert_eq!(c.get(3), 1);
        // Saturating at zero.
        c.decrement(0);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn reset_and_snapshot() {
        let c = GlobalCounter::new(4);
        c.increment(0);
        c.increment(2);
        assert_eq!(c.snapshot(), vec![1, 0, 1, 0]);
        c.reset();
        assert_eq!(c.snapshot(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn from_values_and_copy_from() {
        let a = GlobalCounter::from_values(&[5, 3, 9]);
        assert_eq!(a.get(2), 9);
        let b = GlobalCounter::new(3);
        b.copy_from(&a);
        assert_eq!(b.snapshot(), vec![5, 3, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_rejects_length_mismatch() {
        GlobalCounter::new(2).copy_from(&GlobalCounter::new(3));
    }

    #[test]
    fn argmax_finds_unique_maximum() {
        let c = GlobalCounter::from_values(&[3, 7, 2, 7, 9, 1]);
        assert_eq!(c.parallel_argmax(4), Some((4, 9)));
        assert_eq!(c.sequential_argmax(), Some((4, 9)));
    }

    #[test]
    fn argmax_breaks_ties_toward_smaller_id() {
        let c = GlobalCounter::from_values(&[1, 5, 5, 5]);
        assert_eq!(c.parallel_argmax(3), Some((1, 5)));
        assert_eq!(c.sequential_argmax(), Some((1, 5)));
        // Also when parts > len.
        assert_eq!(c.parallel_argmax(16), Some((1, 5)));
    }

    #[test]
    fn argmax_of_empty_counter_is_none() {
        let c = GlobalCounter::new(0);
        assert_eq!(c.parallel_argmax(4), None);
        assert_eq!(c.sequential_argmax(), None);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = GlobalCounter::new(8);
        let increments_per_thread = 10_000u64;
        rayon::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for i in 0..increments_per_thread {
                        c.increment((i % 8) as NodeId);
                    }
                });
            }
        });
        let total: u64 = c.snapshot().iter().sum();
        assert_eq!(total, 4 * increments_per_thread);
    }

    proptest! {
        #[test]
        fn parallel_argmax_matches_sequential(values in proptest::collection::vec(0u64..1000, 1..200), parts in 1usize..16) {
            let c = GlobalCounter::from_values(&values);
            prop_assert_eq!(c.parallel_argmax(parts), c.sequential_argmax());
        }

        #[test]
        fn argmax_value_is_the_true_maximum(values in proptest::collection::vec(0u64..1000, 1..100)) {
            let c = GlobalCounter::from_values(&values);
            let (v, count) = c.parallel_argmax(4).unwrap();
            prop_assert_eq!(count, *values.iter().max().unwrap());
            prop_assert_eq!(values[v as usize], count);
        }
    }
}

//! Instrumented kernel variants that emit their memory-access streams.
//!
//! Hardware performance counters and real NUMA placement are not available in
//! this reproduction environment, so the two experiments that depend on them
//! are driven by software models instead (see DESIGN.md §4):
//!
//! * **Table IV (L1+L2 cache misses of `Find_Most_Influential_Set`)** —
//!   [`cache_misses_ripples`] and [`cache_misses_efficient`] replay the exact
//!   sequence of counter/RRR-set accesses each kernel performs through the
//!   [`imm_memsim`] cache hierarchy and report the combined miss count.
//! * **Table II (% of core time spent on the visited-bitmap check, original
//!   vs. NUMA-aware placement)** — [`bitmap_check_cost`] replays the sampling
//!   kernel's accesses against two [`imm_numa`] placements and reports the
//!   modelled share of time spent on the bitmap.
//!
//! The instrumented paths are sequential per simulated core (cache state is
//! inherently per-core), but they walk the same data in the same order as the
//! parallel kernels, so the per-algorithm access-volume asymmetry — the thing
//! the paper's numbers are driven by — is preserved.

use crate::NodeId;
use imm_diffusion::DiffusionModel;
use imm_graph::{block_ranges, CsrGraph, EdgeWeights};
use imm_memsim::{synthetic_address, HierarchyConfig, MemoryHierarchy};
use imm_numa::{AccessKind, AccessTracker, CostModel, NumaRegion, PlacementPolicy, Topology};
use imm_rrr::RrrCollection;
use rand::Rng;

/// Memory regions used when synthesizing addresses.
mod region {
    /// The per-vertex occurrence counter array.
    pub const COUNTER: u32 = 1;
    /// The RRR-set payload storage (element `i` of set `s` lives at
    /// `s * stride + i`).
    pub const RRR_SETS: u32 = 2;
    /// Per-thread local counter arrays of the Ripples kernel.
    pub const LOCAL_COUNTERS: u32 = 3;
}

const COUNTER_ELEM_BYTES: u64 = 8;
const VERTEX_BYTES: u64 = 4;
/// Synthetic stride separating consecutive RRR sets in the trace address
/// space; large enough that distinct sets never share a cache line.
const RRR_SET_STRIDE: u64 = 1 << 20;

/// Result of a cache-instrumented selection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheMissReport {
    /// Combined L1 + L2 misses over all simulated cores.
    pub l1_plus_l2_misses: u64,
    /// Total memory accesses issued.
    pub accesses: u64,
}

/// Replay the Ripples selection kernel's access stream for `threads`
/// simulated cores and report the combined miss count.
///
/// Access pattern per the baseline: every core walks **all** RRR sets for the
/// counting pass (reading every element and writing its own local counter),
/// and for every selected seed walks all alive sets again (binary-search
/// probes plus decrements of its local counters).
pub fn cache_misses_ripples(
    sets: &RrrCollection,
    k: usize,
    threads: usize,
    config: HierarchyConfig,
) -> CacheMissReport {
    let threads = threads.max(1);
    let n = sets.num_nodes();
    let mut hierarchy = MemoryHierarchy::new(threads, config);
    let ranges = block_ranges(n, threads);

    // Counting pass: every core reads every element of every set and updates
    // its own local counter when the vertex falls in its range.
    for (core, range) in ranges.iter().enumerate() {
        for (set_idx, set) in sets.iter().enumerate() {
            for v in set.iter() {
                hierarchy.access(core, rrr_element_address(set_idx, v));
                let vi = v as usize;
                if vi >= range.start && vi < range.end {
                    hierarchy.access(
                        core,
                        synthetic_address(
                            region::LOCAL_COUNTERS,
                            ((core as u64) << 32)
                                | ((vi - range.start) as u64 * COUNTER_ELEM_BYTES),
                        ),
                    );
                }
            }
        }
    }

    // Seed extraction + decouple passes.
    let mut alive = vec![true; sets.len()];
    let seeds = greedy_seeds(sets, k);
    for seed in seeds {
        for (core, range) in ranges.iter().enumerate() {
            // Regional max scan over the core's local counters.
            for offset in 0..range.len() {
                hierarchy.access(
                    core,
                    synthetic_address(
                        region::LOCAL_COUNTERS,
                        ((core as u64) << 32) | (offset as u64 * COUNTER_ELEM_BYTES),
                    ),
                );
            }
            for (set_idx, set) in sets.iter().enumerate() {
                if !alive[set_idx] {
                    continue;
                }
                // Binary-search probe touches ~log2(|R|) elements.
                let len = set.len().max(1);
                let probes = (usize::BITS - (len - 1).leading_zeros()).max(1) as u64;
                for p in 0..probes {
                    hierarchy.access(
                        core,
                        rrr_element_address(set_idx, (p * (len as u64 / probes.max(1))) as NodeId),
                    );
                }
                if set.contains(seed) {
                    for v in set.iter() {
                        hierarchy.access(core, rrr_element_address(set_idx, v));
                        let vi = v as usize;
                        if vi >= range.start && vi < range.end {
                            hierarchy.access(
                                core,
                                synthetic_address(
                                    region::LOCAL_COUNTERS,
                                    ((core as u64) << 32)
                                        | ((vi - range.start) as u64 * COUNTER_ELEM_BYTES),
                                ),
                            );
                        }
                    }
                }
            }
        }
        for (set_idx, set) in sets.iter().enumerate() {
            if alive[set_idx] && set.contains(seed) {
                alive[set_idx] = false;
            }
        }
    }

    let stats = hierarchy.total_stats();
    CacheMissReport { l1_plus_l2_misses: stats.l1_plus_l2_misses(), accesses: stats.accesses() }
}

/// Replay the EfficientIMM selection kernel's access stream.
///
/// Access pattern per Algorithm 2: the RRR sets are partitioned across cores,
/// each element is read once and triggers one atomic counter update; seed
/// extraction scans the shared counter once per core range; the decouple step
/// touches only the covered sets (or rebuilds from the survivors when that is
/// cheaper, mirroring the adaptive update).
pub fn cache_misses_efficient(
    sets: &RrrCollection,
    k: usize,
    threads: usize,
    config: HierarchyConfig,
    rebuild_threshold: f64,
) -> CacheMissReport {
    let threads = threads.max(1);
    let n = sets.num_nodes();
    let mut hierarchy = MemoryHierarchy::new(threads, config);
    let set_ranges = block_ranges(sets.len(), threads);
    let counter_ranges = block_ranges(n, threads);

    // Counting pass: each set is touched by exactly one core.
    for (core, set_range) in set_ranges.iter().enumerate() {
        for set_idx in set_range.iter() {
            let set = sets.get(set_idx);
            for v in set.iter() {
                hierarchy.access(core, rrr_element_address(set_idx, v));
                hierarchy.access(core, counter_address(v));
            }
        }
    }

    let mut alive = vec![true; sets.len()];
    let mut alive_count = sets.len();
    let seeds = greedy_seeds(sets, k);
    for seed in seeds {
        // Two-level parallel reduction: each core scans its slice of the
        // shared counter once.
        for (core, counter_range) in counter_ranges.iter().enumerate() {
            for v in counter_range.iter() {
                hierarchy.access(core, counter_address(v as NodeId));
            }
        }
        let covered: Vec<usize> =
            (0..sets.len()).filter(|&idx| alive[idx] && sets.get(idx).contains(seed)).collect();
        let rebuild =
            alive_count > 0 && (covered.len() as f64 / alive_count as f64) > rebuild_threshold;

        if rebuild {
            for &idx in &covered {
                alive[idx] = false;
            }
            // Rebuild touches the surviving sets, partitioned across cores.
            for (core, set_range) in set_ranges.iter().enumerate() {
                for set_idx in set_range.iter() {
                    if !alive[set_idx] {
                        continue;
                    }
                    let set = sets.get(set_idx);
                    for v in set.iter() {
                        hierarchy.access(core, rrr_element_address(set_idx, v));
                        hierarchy.access(core, counter_address(v));
                    }
                }
            }
        } else {
            // Decrement pass: covered sets partitioned across cores.
            let covered_ranges = block_ranges(covered.len(), threads);
            for (core, covered_range) in covered_ranges.iter().enumerate() {
                for pos in covered_range.iter() {
                    let set_idx = covered[pos];
                    let set = sets.get(set_idx);
                    for v in set.iter() {
                        hierarchy.access(core, rrr_element_address(set_idx, v));
                        hierarchy.access(core, counter_address(v));
                    }
                }
            }
            for &idx in &covered {
                alive[idx] = false;
            }
        }
        alive_count -= covered.len();
    }

    let stats = hierarchy.total_stats();
    CacheMissReport { l1_plus_l2_misses: stats.l1_plus_l2_misses(), accesses: stats.accesses() }
}

fn counter_address(v: NodeId) -> u64 {
    synthetic_address(region::COUNTER, v as u64 * COUNTER_ELEM_BYTES)
}

fn rrr_element_address(set_idx: usize, v: NodeId) -> u64 {
    synthetic_address(region::RRR_SETS, set_idx as u64 * RRR_SET_STRIDE + v as u64 * VERTEX_BYTES)
}

/// Sequential greedy max-coverage (shared by both instrumented replays so the
/// two traces remove the same seeds in the same order).
fn greedy_seeds(sets: &RrrCollection, k: usize) -> Vec<NodeId> {
    let n = sets.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut counts = vec![0u64; n];
    for set in sets.iter() {
        for v in set.iter() {
            counts[v as usize] += 1;
        }
    }
    let mut alive = vec![true; sets.len()];
    let mut seeds = Vec::with_capacity(k);
    for _ in 0..k.min(n) {
        let (best, best_count) = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(v, &c)| (v as NodeId, c))
            .unwrap_or((0, 0));
        seeds.push(best);
        if best_count == 0 {
            continue;
        }
        for (idx, set) in sets.iter().enumerate() {
            if alive[idx] && set.contains(best) {
                alive[idx] = false;
                for v in set.iter() {
                    counts[v as usize] = counts[v as usize].saturating_sub(1);
                }
            }
        }
    }
    seeds
}

/// Result of the NUMA-placement experiment for one placement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BitmapCostReport {
    /// Modelled cost of the visited-bitmap accesses.
    pub bitmap_cost: f64,
    /// Modelled cost of all other accesses of the sampling kernel
    /// (graph traversal + RRR-set writes).
    pub other_cost: f64,
    /// Fraction of the total modelled cost spent on the bitmap check —
    /// the paper's Table II metric.
    pub bitmap_fraction: f64,
    /// Fraction of bitmap accesses that were remote.
    pub bitmap_remote_fraction: f64,
}

/// Model the sampling kernel's memory-access cost under a given placement of
/// the visited bitmap and RRR-set buffers.
///
/// `numa_aware` selects the placement being evaluated: the "original" layout
/// places the bitmap (and RRR buffers) on a single node, the NUMA-aware
/// layout binds them to each worker's local node.
#[allow(clippy::too_many_arguments)] // mirrors the experiment axes; a config struct would obscure the table-binary call sites
pub fn bitmap_check_cost(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    num_sets: usize,
    rng_seed: u64,
    topology: Topology,
    threads: usize,
    numa_aware: bool,
) -> BitmapCostReport {
    let threads = threads.max(1).min(topology.num_cores());
    let n = graph.num_nodes();
    let cost_model = CostModel::default();

    // The graph is interleaved in both configurations (the paper interleaves
    // it in the NUMA-aware design and it is the default under numactl).
    let graph_region =
        NumaRegion::place(graph.num_edges().max(1), 8, PlacementPolicy::Interleaved, &topology);

    let mut tracker = AccessTracker::new(topology);
    let mut bitmap_tracker = AccessTracker::new(topology);
    let mut marker = crate::sampling::VisitMarker::new(n);

    for set_idx in 0..num_sets {
        let worker = set_idx % threads;
        let core = topology.core_for_thread(worker, threads);
        let worker_node = topology.node_of_core(core);
        // Original layout: bitmap and RRR buffers live wherever they were
        // first touched (node 0). NUMA-aware layout: bound to the worker's
        // node via mbind.
        let data_placement = if numa_aware {
            PlacementPolicy::ThreadLocal(worker_node)
        } else {
            PlacementPolicy::SingleNode(0)
        };
        let bitmap_region = NumaRegion::place(n.div_ceil(8).max(1), 1, data_placement, &topology);
        let rrr_region = NumaRegion::place(n.max(1), 4, data_placement, &topology);

        let mut rng = crate::sampling::rng_for_set(rng_seed, set_idx);
        let root = rng.gen_range(0..n as u32);
        let vertices =
            crate::sampling::generate_rrr_set(graph, weights, model, root, &mut rng, &mut marker);

        // Replay the traversal's accesses: for every reached vertex we walk
        // its in-edges (graph reads), check the bitmap once per examined
        // neighbor (bitmap reads), and write the vertex into the RRR buffer.
        for (i, &v) in vertices.iter().enumerate() {
            for (u, _eid) in graph.in_neighbors_with_edge_ids(v) {
                tracker.record(
                    core,
                    &graph_region,
                    v as usize % graph.num_edges().max(1),
                    AccessKind::Read,
                );
                bitmap_tracker.record(core, &bitmap_region, (u as usize) / 8, AccessKind::Read);
            }
            tracker.record(core, &rrr_region, i, AccessKind::Write);
        }
        // The bitmap writes for newly visited vertices.
        for &v in &vertices {
            bitmap_tracker.record(core, &bitmap_region, (v as usize) / 8, AccessKind::Write);
        }
    }

    let bitmap_stats = bitmap_tracker.total();
    let other_stats = tracker.total();
    let bitmap_cost = cost_model.cost(&bitmap_stats);
    let other_cost = cost_model.cost(&other_stats);
    let total = bitmap_cost + other_cost;
    BitmapCostReport {
        bitmap_cost,
        other_cost,
        bitmap_fraction: if total == 0.0 { 0.0 } else { bitmap_cost / total },
        bitmap_remote_fraction: bitmap_stats.remote_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::test_support::collection;
    use imm_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn skewed_sets(num_sets: usize, n: usize) -> RrrCollection {
        // Dense sets sharing a popular vertex 0 — the structure that makes
        // the baseline's full rescans expensive.
        let owned: Vec<Vec<u32>> = (0..num_sets)
            .map(|i| {
                let mut v: Vec<u32> = (0..(n / 4)).map(|j| ((i + j * 3) % n) as u32).collect();
                v.push(0);
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let slices: Vec<&[u32]> = owned.iter().map(|v| v.as_slice()).collect();
        collection(n, &slices)
    }

    #[test]
    fn efficient_kernel_has_far_fewer_misses_than_ripples() {
        let sets = skewed_sets(64, 512);
        let config = HierarchyConfig::default();
        let ripples = cache_misses_ripples(&sets, 5, 4, config);
        let efficient = cache_misses_efficient(&sets, 5, 4, config, 0.5);
        assert!(ripples.accesses > efficient.accesses, "baseline touches more memory");
        assert!(
            ripples.l1_plus_l2_misses > 2 * efficient.l1_plus_l2_misses,
            "expected a large miss reduction: ripples={} efficient={}",
            ripples.l1_plus_l2_misses,
            efficient.l1_plus_l2_misses
        );
    }

    #[test]
    fn miss_counts_are_deterministic() {
        let sets = skewed_sets(32, 256);
        let config = HierarchyConfig::default();
        let a = cache_misses_efficient(&sets, 3, 2, config, 0.5);
        let b = cache_misses_efficient(&sets, 3, 2, config, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn ripples_misses_grow_with_thread_count() {
        let sets = skewed_sets(32, 256);
        let config = HierarchyConfig::default();
        let t1 = cache_misses_ripples(&sets, 3, 1, config);
        let t8 = cache_misses_ripples(&sets, 3, 8, config);
        assert!(t8.accesses > 4 * t1.accesses);
    }

    #[test]
    fn zero_seeds_report_zero_misses() {
        let sets = collection(16, &[]);
        let config = HierarchyConfig::default();
        let r = cache_misses_ripples(&sets, 0, 2, config);
        assert_eq!(r.l1_plus_l2_misses, 0);
        assert_eq!(r.accesses, 0);
        let e = cache_misses_efficient(&sets, 0, 2, config, 0.5);
        assert_eq!(e.l1_plus_l2_misses, 0);
        assert_eq!(e.accesses, 0);
    }

    #[test]
    fn numa_aware_placement_reduces_bitmap_cost_share() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = CsrGraph::from_edge_list(&generators::social_network(800, 8, 0.3, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);
        let topo = Topology::new(8, 4);
        let original =
            bitmap_check_cost(&g, &w, DiffusionModel::IndependentCascade, 48, 7, topo, 32, false);
        let aware =
            bitmap_check_cost(&g, &w, DiffusionModel::IndependentCascade, 48, 7, topo, 32, true);
        assert!(
            aware.bitmap_fraction < original.bitmap_fraction,
            "NUMA-aware placement must lower the bitmap share: {} vs {}",
            aware.bitmap_fraction,
            original.bitmap_fraction
        );
        assert!(aware.bitmap_remote_fraction < original.bitmap_remote_fraction);
        assert!(original.bitmap_fraction > 0.0 && original.bitmap_fraction < 1.0);
    }
}

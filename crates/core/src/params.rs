//! Algorithm parameters and execution configuration.

use imm_diffusion::DiffusionModel;
use imm_numa::{PlacementPolicy, Topology};
use imm_rrr::AdaptivePolicy;

/// The IMM problem parameters (what to solve).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ImmParams {
    /// Number of seeds to select (the paper uses `k = 50` throughout).
    pub k: usize,
    /// Approximation parameter ε of the `(1 - 1/e - ε)` guarantee
    /// (the paper uses `ε = 0.5`).
    pub epsilon: f64,
    /// Confidence exponent ℓ: the guarantee holds with probability at least
    /// `1 - 1/n^ℓ` (IMM's default is 1).
    pub ell: f64,
    /// Diffusion model the RRR sets are sampled under.
    pub model: DiffusionModel,
    /// Base RNG seed; every RRR set derives its own stream from this, so runs
    /// are reproducible for any thread count.
    pub rng_seed: u64,
}

impl ImmParams {
    /// Parameters with the paper's defaults for `ell` (1.0) and a fixed seed.
    pub fn new(k: usize, epsilon: f64, model: DiffusionModel) -> Self {
        ImmParams { k, epsilon, ell: 1.0, model, rng_seed: 0x5EED }
    }

    /// The configuration used in the paper's evaluation: `k = 50, ε = 0.5`.
    pub fn paper_defaults(model: DiffusionModel) -> Self {
        ImmParams::new(50, 0.5, model)
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Replace ℓ.
    pub fn with_ell(mut self, ell: f64) -> Self {
        self.ell = ell;
        self
    }

    /// Validate the parameters against a graph of `num_nodes` vertices.
    pub fn validate(&self, num_nodes: usize) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1".into());
        }
        if num_nodes == 0 {
            return Err("graph has no vertices".into());
        }
        if self.k > num_nodes {
            return Err(format!("k = {} exceeds the number of vertices ({num_nodes})", self.k));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(format!("epsilon must be in (0, 1), got {}", self.epsilon));
        }
        if self.ell <= 0.0 {
            return Err(format!("ell must be positive, got {}", self.ell));
        }
        Ok(())
    }
}

/// Which parallel engine executes the workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// The Ripples baseline: vertex-partitioned counting, sorted RRR sets,
    /// separate kernels.
    Ripples,
    /// EfficientIMM: RRR-set partitioning, shared atomic counter, kernel
    /// fusion and the adaptive optimizations.
    Efficient,
}

impl Algorithm {
    /// Short name used in benchmark output (`"ripples"` / `"efficientimm"`).
    pub fn short_name(&self) -> &'static str {
        match self {
            Algorithm::Ripples => "ripples",
            Algorithm::Efficient => "efficientimm",
        }
    }
}

/// Feature toggles for the EfficientIMM engine; each corresponds to one of
/// the paper's optimizations and can be disabled for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EfficientFeatures {
    /// Fuse RRR-set generation with the initial counter update (§IV-B,
    /// Algorithm 3).
    pub kernel_fusion: bool,
    /// Adaptive sorted-list / bitmap RRR-set representation (§IV-C).
    pub adaptive_representation: bool,
    /// Adaptive decrement-vs-rebuild counter update after each selected seed
    /// (§IV-C, Figure 5).
    pub adaptive_counter_update: bool,
    /// Dynamic producer-consumer job balancing instead of static chunking
    /// (§IV-C).
    pub dynamic_balancing: bool,
    /// Fraction of alive RRR sets covered by the newly selected seed above
    /// which the counter is rebuilt instead of decremented (only meaningful
    /// when `adaptive_counter_update` is on).
    pub rebuild_threshold: f64,
}

impl Default for EfficientFeatures {
    fn default() -> Self {
        EfficientFeatures {
            kernel_fusion: true,
            adaptive_representation: true,
            adaptive_counter_update: true,
            dynamic_balancing: true,
            rebuild_threshold: 0.5,
        }
    }
}

impl EfficientFeatures {
    /// Every optimization disabled (the "naive RRR-set-partitioned" engine
    /// used as the ablation floor).
    pub fn none() -> Self {
        EfficientFeatures {
            kernel_fusion: false,
            adaptive_representation: false,
            adaptive_counter_update: false,
            dynamic_balancing: false,
            rebuild_threshold: 0.5,
        }
    }

    /// The RRR-set representation policy implied by the flags.
    pub fn representation_policy(&self) -> AdaptivePolicy {
        if self.adaptive_representation {
            AdaptivePolicy::default()
        } else {
            AdaptivePolicy::always_sorted()
        }
    }
}

/// How the workflow is executed: engine, parallelism, features and the
/// modelled NUMA placement used by the instrumented kernels.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExecutionConfig {
    /// Which engine runs the two kernels.
    pub algorithm: Algorithm,
    /// Number of worker threads (a dedicated rayon pool of this size is used,
    /// so different configs can coexist in one process).
    pub threads: usize,
    /// EfficientIMM feature toggles (ignored by the Ripples engine).
    pub features: EfficientFeatures,
    /// Modelled machine topology for the NUMA-instrumented runs.
    pub topology: Topology,
    /// Modelled placement of the shared structures (graph, RRR sets, global
    /// counter) for the NUMA-instrumented runs.
    pub placement: PlacementPolicy,
    /// Chunk size (in RRR sets or vertices) of a dynamically balanced job.
    pub job_chunk: usize,
    /// Return the sampled [`imm_rrr::RrrCollection`] in
    /// [`ImmResult::rrr_sets`](crate::ImmResult::rrr_sets) instead of dropping
    /// it, so callers (the `imm-service` sketch index, the CLI stats path) can
    /// reuse the sketches without resampling. Off by default: the collection
    /// can be large and most batch callers only want the seeds.
    pub retain_rrr_sets: bool,
    /// Record per-set sampling provenance (root + probed-edge footprint) in
    /// [`ImmResult::provenance`](crate::ImmResult::provenance) — the input
    /// for building an incrementally refreshable `imm-service` index. Off by
    /// default: batch runs discard the sample and have no use for it.
    pub trace_provenance: bool,
}

impl ExecutionConfig {
    /// Configuration with default features, an interleaved 8-node topology
    /// model and the given engine/thread count.
    pub fn new(algorithm: Algorithm, threads: usize) -> Self {
        ExecutionConfig {
            algorithm,
            threads: threads.max(1),
            features: match algorithm {
                Algorithm::Ripples => EfficientFeatures::none(),
                Algorithm::Efficient => EfficientFeatures::default(),
            },
            topology: Topology::perlmutter_node(),
            placement: PlacementPolicy::Interleaved,
            job_chunk: 64,
            retain_rrr_sets: false,
            trace_provenance: false,
        }
    }

    /// Opt in (or out) of returning the sampled RRR collection in the result.
    pub fn with_retained_sets(mut self, retain: bool) -> Self {
        self.retain_rrr_sets = retain;
        self
    }

    /// Opt in (or out) of recording per-set sampling provenance.
    pub fn with_provenance(mut self, trace: bool) -> Self {
        self.trace_provenance = trace;
        self
    }

    /// Replace the feature flags.
    pub fn with_features(mut self, features: EfficientFeatures) -> Self {
        self.features = features;
        self
    }

    /// Replace the modelled topology/placement.
    pub fn with_numa(mut self, topology: Topology, placement: PlacementPolicy) -> Self {
        self.topology = topology;
        self.placement = placement;
        self
    }

    /// Build the rayon thread pool this configuration asks for.
    pub fn build_pool(&self) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .thread_name(|i| format!("imm-worker-{i}"))
            .build()
            .expect("failed to build rayon thread pool")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_evaluation_setup() {
        let p = ImmParams::paper_defaults(DiffusionModel::IndependentCascade);
        assert_eq!(p.k, 50);
        assert!((p.epsilon - 0.5).abs() < 1e-12);
        assert!((p.ell - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let model = DiffusionModel::IndependentCascade;
        assert!(ImmParams::new(0, 0.5, model).validate(100).is_err());
        assert!(ImmParams::new(5, 0.5, model).validate(0).is_err());
        assert!(ImmParams::new(500, 0.5, model).validate(100).is_err());
        assert!(ImmParams::new(5, 0.0, model).validate(100).is_err());
        assert!(ImmParams::new(5, 1.5, model).validate(100).is_err());
        assert!(ImmParams::new(5, 0.5, model).with_ell(0.0).validate(100).is_err());
        assert!(ImmParams::new(5, 0.5, model).validate(100).is_ok());
    }

    #[test]
    fn builders_set_fields() {
        let p = ImmParams::new(3, 0.3, DiffusionModel::LinearThreshold).with_seed(99).with_ell(2.0);
        assert_eq!(p.rng_seed, 99);
        assert!((p.ell - 2.0).abs() < 1e-12);
    }

    #[test]
    fn execution_config_defaults_follow_algorithm() {
        let ripples = ExecutionConfig::new(Algorithm::Ripples, 4);
        assert!(!ripples.features.kernel_fusion);
        let eff = ExecutionConfig::new(Algorithm::Efficient, 4);
        assert!(eff.features.kernel_fusion);
        assert!(eff.features.adaptive_counter_update);
        assert_eq!(eff.threads, 4);
        // Zero threads is clamped to one.
        assert_eq!(ExecutionConfig::new(Algorithm::Efficient, 0).threads, 1);
    }

    #[test]
    fn representation_policy_follows_flag() {
        let adaptive = EfficientFeatures::default().representation_policy();
        assert!(adaptive.density_threshold < 1.0);
        let sorted = EfficientFeatures::none().representation_policy();
        assert!(sorted.density_threshold > 1.0);
    }

    #[test]
    fn build_pool_has_requested_parallelism() {
        let cfg = ExecutionConfig::new(Algorithm::Efficient, 3);
        let pool = cfg.build_pool();
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn short_names() {
        assert_eq!(Algorithm::Ripples.short_name(), "ripples");
        assert_eq!(Algorithm::Efficient.short_name(), "efficientimm");
    }
}

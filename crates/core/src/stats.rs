//! Runtime breakdown, work profiles and kernel timings.
//!
//! Figure 2 of the paper breaks Ripples' runtime into its kernels, and the
//! strong-scaling figures (1, 6, 7) are built from per-thread-count runtimes.
//! [`RuntimeBreakdown`] is the per-run record both engines fill in;
//! [`WorkProfile`] additionally records the per-thread operation counts that
//! the benchmark harness's scaling model consumes (this environment has a
//! single physical core, so the *shape* of the scaling curves is derived
//! from measured work distribution rather than wall-clock — see DESIGN.md §4).

use std::time::Duration;

/// Wall-clock time spent in each kernel of one IMM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelTimings {
    /// Time generating RRR sets (`Generate_RRRsets`), across all martingale
    /// iterations.
    pub generate_rrrsets: Duration,
    /// Time selecting seeds (`Find_Most_Influential_Set`), across all calls.
    pub find_most_influential: Duration,
    /// Time spent in θ estimation and other bookkeeping.
    pub other: Duration,
}

impl KernelTimings {
    /// Total runtime.
    pub fn total(&self) -> Duration {
        self.generate_rrrsets + self.find_most_influential + self.other
    }

    /// Fraction of the total spent in seed selection (the kernel whose share
    /// explodes with thread count in the Ripples baseline — Figure 2).
    pub fn selection_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.find_most_influential.as_secs_f64() / total
        }
    }

    /// Merge another run's timings (used when accumulating over repetitions).
    pub fn merge(&mut self, other: &KernelTimings) {
        self.generate_rrrsets += other.generate_rrrsets;
        self.find_most_influential += other.find_most_influential;
        self.other += other.other;
    }
}

/// Per-thread operation counts of one kernel execution.
///
/// "Operations" are the unit the paper's memory-traversal analysis counts:
/// counter loads/stores, RRR-set element visits and binary-search probes.
/// The maximum per-thread count is the modelled parallel span of the kernel;
/// the sum is its total work.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkProfile {
    /// Operations executed by each worker thread.
    pub per_thread_ops: Vec<u64>,
    /// Number of atomic read-modify-write operations issued (EfficientIMM's
    /// concurrent counter updates; zero for the Ripples engine).
    pub atomic_ops: u64,
    /// Number of binary-search probes issued (Ripples' membership checks;
    /// zero when bitmaps answer membership in O(1)).
    pub search_probes: u64,
}

impl WorkProfile {
    /// Profile for `threads` workers with no recorded work.
    pub fn new(threads: usize) -> Self {
        WorkProfile { per_thread_ops: vec![0; threads.max(1)], atomic_ops: 0, search_probes: 0 }
    }

    /// Total operations over all threads.
    pub fn total_ops(&self) -> u64 {
        self.per_thread_ops.iter().sum()
    }

    /// The largest per-thread operation count (the modelled span).
    pub fn max_thread_ops(&self) -> u64 {
        self.per_thread_ops.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the heaviest thread to the average — 1.0 means perfectly
    /// balanced work.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 || self.per_thread_ops.is_empty() {
            return 1.0;
        }
        let avg = total as f64 / self.per_thread_ops.len() as f64;
        self.max_thread_ops() as f64 / avg
    }

    /// Merge another profile (same thread count) into this one.
    pub fn merge(&mut self, other: &WorkProfile) {
        if self.per_thread_ops.len() < other.per_thread_ops.len() {
            self.per_thread_ops.resize(other.per_thread_ops.len(), 0);
        }
        for (mine, theirs) in self.per_thread_ops.iter_mut().zip(&other.per_thread_ops) {
            *mine += theirs;
        }
        self.atomic_ops += other.atomic_ops;
        self.search_probes += other.search_probes;
    }
}

/// Everything recorded about one IMM run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RuntimeBreakdown {
    /// Wall-clock per kernel.
    pub timings: KernelTimings,
    /// Work profile of the sampling kernel.
    pub sampling_work: WorkProfile,
    /// Work profile of the selection kernel.
    pub selection_work: WorkProfile,
    /// Number of RRR sets generated in total (θ actually materialized).
    pub rrr_sets_generated: usize,
    /// Number of martingale iterations executed before convergence.
    pub sampling_iterations: usize,
    /// Peak RRR-set storage in bytes.
    pub rrr_memory_bytes: usize,
    /// How many counter rebuilds the adaptive update chose (EfficientIMM).
    pub counter_rebuilds: usize,
    /// How many decrement-style updates were used.
    pub counter_decrements: usize,
}

impl RuntimeBreakdown {
    /// Total wall-clock of the run.
    pub fn total_time(&self) -> Duration {
        self.timings.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total_and_fraction() {
        let t = KernelTimings {
            generate_rrrsets: Duration::from_millis(300),
            find_most_influential: Duration::from_millis(600),
            other: Duration::from_millis(100),
        };
        assert_eq!(t.total(), Duration::from_millis(1000));
        assert!((t.selection_fraction() - 0.6).abs() < 1e-9);
        assert_eq!(KernelTimings::default().selection_fraction(), 0.0);
    }

    #[test]
    fn timings_merge_adds() {
        let mut a =
            KernelTimings { generate_rrrsets: Duration::from_millis(10), ..Default::default() };
        let b = KernelTimings {
            generate_rrrsets: Duration::from_millis(5),
            find_most_influential: Duration::from_millis(7),
            other: Duration::ZERO,
        };
        a.merge(&b);
        assert_eq!(a.generate_rrrsets, Duration::from_millis(15));
        assert_eq!(a.find_most_influential, Duration::from_millis(7));
    }

    #[test]
    fn work_profile_aggregates() {
        let mut p = WorkProfile::new(4);
        p.per_thread_ops = vec![10, 20, 30, 40];
        assert_eq!(p.total_ops(), 100);
        assert_eq!(p.max_thread_ops(), 40);
        assert!((p.imbalance() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_balanced() {
        let p = WorkProfile::new(3);
        assert_eq!(p.total_ops(), 0);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn work_profile_merge_handles_unequal_lengths() {
        let mut a = WorkProfile::new(2);
        a.per_thread_ops = vec![1, 2];
        let mut b = WorkProfile::new(4);
        b.per_thread_ops = vec![10, 10, 10, 10];
        b.atomic_ops = 5;
        a.merge(&b);
        assert_eq!(a.per_thread_ops, vec![11, 12, 10, 10]);
        assert_eq!(a.atomic_ops, 5);
    }

    #[test]
    fn breakdown_total_time() {
        let mut b = RuntimeBreakdown::default();
        b.timings.generate_rrrsets = Duration::from_secs(1);
        b.timings.find_most_influential = Duration::from_secs(2);
        assert_eq!(b.total_time(), Duration::from_secs(3));
    }
}

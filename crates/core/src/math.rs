//! The martingale bounds of the IMM algorithm (Tang, Shi, Xiao — SIGMOD'15).
//!
//! These formulas decide how many RRR sets (θ) are needed for the
//! `(1 - 1/e - ε)` approximation guarantee to hold with probability
//! `1 - 1/n^ℓ`. They are shared verbatim by both engines — the paper changes
//! *how* the kernels execute, not the statistics.

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Computed as `Σ_{i=0}^{k-1} ln((n - i) / (k - i))`, which is exact enough
/// for the small `k` (tens) used in influence maximization and avoids any
/// dependence on a `lgamma` implementation.
pub fn log_binomial(n: usize, k: usize) -> f64 {
    if k == 0 || k >= n {
        return 0.0;
    }
    // C(n, k) == C(n, n - k); use the smaller side for fewer terms.
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((k - i) as f64).ln();
    }
    acc
}

/// ε′ = √2 · ε — the tighter parameter the sampling phase targets so the
/// final guarantee still holds after the union bound (Tang et al., §4.1).
pub fn epsilon_prime(epsilon: f64) -> f64 {
    epsilon * std::f64::consts::SQRT_2
}

/// The adjusted confidence exponent ℓ′ = ℓ · (1 + ln 2 / ln n), which spreads
/// the failure probability across the sampling and selection phases.
pub fn adjusted_ell(ell: f64, n: usize) -> f64 {
    if n <= 1 {
        return ell;
    }
    ell * (1.0 + std::f64::consts::LN_2 / (n as f64).ln())
}

/// λ′ — the sampling-phase constant: the number of RRR sets needed at
/// iteration `i` of the sampling phase is `λ′ / x_i` with `x_i = n / 2^i`.
pub fn lambda_prime(n: usize, k: usize, epsilon: f64, ell: f64) -> f64 {
    let n_f = n as f64;
    let eps_p = epsilon_prime(epsilon);
    let log_n = n_f.ln();
    let log_log_n = (n_f.log2()).max(1.0).ln();
    (2.0 + 2.0 / 3.0 * eps_p) * (log_binomial(n, k) + ell * log_n + log_log_n) * n_f
        / (eps_p * eps_p)
}

/// λ* — the final-phase constant: θ = λ* / LB where LB is the lower bound on
/// OPT established by the sampling phase.
pub fn lambda_star(n: usize, k: usize, epsilon: f64, ell: f64) -> f64 {
    let n_f = n as f64;
    let log_n = n_f.ln();
    let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
    let alpha = (ell * log_n + std::f64::consts::LN_2).sqrt();
    let beta =
        (one_minus_inv_e * (log_binomial(n, k) + ell * log_n + std::f64::consts::LN_2)).sqrt();
    2.0 * n_f * (one_minus_inv_e * alpha + beta).powi(2) / (epsilon * epsilon)
}

/// Number of sampling-phase iterations: ⌈log₂ n⌉ − 1 (at least 1).
pub fn sampling_iterations(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    (((n as f64).log2().ceil()) as usize).saturating_sub(1).max(1)
}

/// θ_i — RRR sets required by sampling-phase iteration `i` (1-based).
pub fn theta_for_iteration(n: usize, k: usize, epsilon: f64, ell: f64, iteration: usize) -> usize {
    let x = (n as f64) / 2f64.powi(iteration as i32);
    if x < 1.0 {
        return lambda_prime(n, k, epsilon, ell).ceil() as usize;
    }
    (lambda_prime(n, k, epsilon, ell) / x).ceil() as usize
}

/// Did the sampling phase's greedy cover enough to stop?  The check
/// `n · F(S_i) ≥ (1 + ε′) · x_i` from Algorithm 2 of Tang et al.
pub fn sampling_converged(
    n: usize,
    coverage_fraction: f64,
    epsilon: f64,
    iteration: usize,
) -> bool {
    let x = (n as f64) / 2f64.powi(iteration as i32);
    n as f64 * coverage_fraction >= (1.0 + epsilon_prime(epsilon)) * x
}

/// The OPT lower bound implied by a converged sampling iteration.
pub fn opt_lower_bound(n: usize, coverage_fraction: f64, epsilon: f64) -> f64 {
    (n as f64 * coverage_fraction) / (1.0 + epsilon_prime(epsilon))
}

/// Final θ given the lower bound.
pub fn final_theta(n: usize, k: usize, epsilon: f64, ell: f64, lower_bound: f64) -> usize {
    if lower_bound <= 0.0 {
        return lambda_star(n, k, epsilon, ell).ceil() as usize;
    }
    (lambda_star(n, k, epsilon, ell) / lower_bound).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn log_binomial_small_cases() {
        // C(5,2) = 10
        assert!((log_binomial(5, 2) - 10f64.ln()).abs() < 1e-9);
        // C(10,3) = 120
        assert!((log_binomial(10, 3) - 120f64.ln()).abs() < 1e-9);
        // Degenerate cases.
        assert_eq!(log_binomial(5, 0), 0.0);
        assert_eq!(log_binomial(5, 5), 0.0);
        assert_eq!(log_binomial(3, 7), 0.0);
    }

    #[test]
    fn log_binomial_is_symmetric() {
        for (n, k) in [(100usize, 10usize), (1000, 50), (37, 15)] {
            assert!((log_binomial(n, k) - log_binomial(n, n - k)).abs() < 1e-6);
        }
    }

    #[test]
    fn epsilon_prime_is_sqrt2_epsilon() {
        assert!((epsilon_prime(0.5) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn adjusted_ell_shrinks_with_n() {
        let small = adjusted_ell(1.0, 100);
        let large = adjusted_ell(1.0, 1_000_000);
        assert!(small > large);
        assert!(large > 1.0);
        assert_eq!(adjusted_ell(1.0, 1), 1.0);
    }

    #[test]
    fn lambda_values_grow_with_n() {
        let l1 = lambda_prime(1_000, 50, 0.5, 1.0);
        let l2 = lambda_prime(100_000, 50, 0.5, 1.0);
        assert!(l2 > l1);
        let s1 = lambda_star(1_000, 50, 0.5, 1.0);
        let s2 = lambda_star(100_000, 50, 0.5, 1.0);
        assert!(s2 > s1);
        assert!(l1 > 0.0 && s1 > 0.0);
    }

    #[test]
    fn lambda_values_grow_as_epsilon_shrinks() {
        assert!(lambda_star(10_000, 50, 0.1, 1.0) > lambda_star(10_000, 50, 0.5, 1.0));
        assert!(lambda_prime(10_000, 50, 0.1, 1.0) > lambda_prime(10_000, 50, 0.5, 1.0));
    }

    #[test]
    fn theta_for_iteration_doubles_each_round() {
        let n = 1 << 16;
        let t1 = theta_for_iteration(n, 50, 0.5, 1.0, 1);
        let t2 = theta_for_iteration(n, 50, 0.5, 1.0, 2);
        let t3 = theta_for_iteration(n, 50, 0.5, 1.0, 3);
        assert!(t2 >= 2 * t1 - 2);
        assert!(t3 >= 2 * t2 - 2);
    }

    #[test]
    fn sampling_iteration_count() {
        assert_eq!(sampling_iterations(2), 1);
        assert_eq!(sampling_iterations(1024), 9);
        assert!(sampling_iterations(1_000_000) >= 19);
    }

    #[test]
    fn convergence_check_matches_hand_computation() {
        // n = 1000, iteration 1 -> x = 500. With eps = 0.5, eps' ~ 0.7071;
        // converged iff 1000 * F >= 1.7071 * 500 = 853.55, i.e. F >= 0.8536.
        assert!(!sampling_converged(1000, 0.85, 0.5, 1));
        assert!(sampling_converged(1000, 0.86, 0.5, 1));
        // Later iterations are easier to satisfy.
        assert!(sampling_converged(1000, 0.25, 0.5, 3));
    }

    #[test]
    fn opt_lower_bound_and_final_theta() {
        let lb = opt_lower_bound(1000, 0.9, 0.5);
        assert!(lb > 500.0 && lb < 900.0);
        let theta = final_theta(1000, 10, 0.5, 1.0, lb);
        assert!(theta > 0);
        // A larger lower bound needs fewer samples.
        assert!(final_theta(1000, 10, 0.5, 1.0, lb * 2.0) < theta);
        // Degenerate lower bound falls back to λ*.
        assert_eq!(
            final_theta(1000, 10, 0.5, 1.0, 0.0),
            lambda_star(1000, 10, 0.5, 1.0).ceil() as usize
        );
    }

    proptest! {
        #[test]
        fn log_binomial_is_monotone_in_n(n in 20usize..2000, k in 1usize..10) {
            prop_assert!(log_binomial(n + 1, k) >= log_binomial(n, k));
        }

        #[test]
        fn lambdas_are_finite_and_positive(
            n in 10usize..1_000_000,
            k in 1usize..100,
            eps in 0.05f64..0.9,
        ) {
            let k = k.min(n - 1).max(1);
            let lp = lambda_prime(n, k, eps, 1.0);
            let ls = lambda_star(n, k, eps, 1.0);
            prop_assert!(lp.is_finite() && lp > 0.0);
            prop_assert!(ls.is_finite() && ls > 0.0);
        }
    }
}

//! The EfficientIMM `Find_Most_Influential_Set` kernel (Algorithm 2 of the
//! paper).
//!
//! The RRR sets — not the vertices — are partitioned across threads. Each
//! thread scatters atomic increments for its sets into one shared
//! [`GlobalCounter`]; the most influential vertex is extracted with a
//! two-level parallel max reduction; and when a seed is removed the counter
//! is either decremented (touching only the covered sets) or rebuilt from the
//! surviving sets, whichever touches less memory — the paper's adaptive
//! counter update.

use crate::balance::{run_jobs, Schedule};
use crate::counter::GlobalCounter;
use crate::params::ExecutionConfig;
use crate::selection::SeedSelection;
use crate::stats::WorkProfile;
use imm_rrr::RrrCollection;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Select `k` seeds with the EfficientIMM RRR-set-partitioned kernel.
///
/// `fused_counter` carries the occurrence counts accumulated during sampling
/// when kernel fusion is enabled; without it the kernel performs the initial
/// counting pass itself (lines 1–6 of Algorithm 2).
pub fn select_seeds_efficient(
    sets: &RrrCollection,
    k: usize,
    exec: &ExecutionConfig,
    pool: &rayon::ThreadPool,
    fused_counter: Option<&GlobalCounter>,
) -> SeedSelection {
    let threads = exec.threads.max(1);
    let n = sets.num_nodes();
    if n == 0 || k == 0 {
        return SeedSelection {
            seeds: Vec::new(),
            coverage_fraction: 0.0,
            work: WorkProfile::new(threads),
            counter_rebuilds: 0,
            counter_decrements: 0,
        };
    }

    let schedule = if exec.features.dynamic_balancing {
        Schedule::Dynamic { chunk: exec.job_chunk.max(1) }
    } else {
        Schedule::Static
    };

    let per_thread_ops: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let atomic_ops = AtomicU64::new(0);

    // Working counter. With fusion the sampled counts are copied so the
    // caller's counter survives this selection (the martingale loop reuses it
    // after appending more sets); without fusion the counts are built here by
    // the set-partitioned concurrent update.
    let counter = GlobalCounter::new(n);
    if let Some(base) = fused_counter {
        counter.copy_from(base);
    } else {
        run_jobs(pool, threads, sets.len(), schedule, |worker, range| {
            let mut ops = 0u64;
            for idx in range.iter() {
                sets.get(idx).for_each(|v| {
                    counter.increment(v);
                    ops += 1;
                });
            }
            per_thread_ops[worker].fetch_add(ops, Ordering::Relaxed);
            atomic_ops.fetch_add(ops, Ordering::Relaxed);
        });
    }

    let alive: Vec<AtomicBool> = (0..sets.len()).map(|_| AtomicBool::new(true)).collect();
    let mut alive_count = sets.len();
    let mut covered_total = 0usize;
    let mut seeds = Vec::with_capacity(k);
    let mut rebuilds = 0usize;
    let mut decrements = 0usize;

    for _ in 0..k.min(n) {
        let (seed, seed_count) = pool
            .install(|| counter.parallel_argmax(threads))
            .expect("counter covers at least one vertex");
        seeds.push(seed);
        if seed_count == 0 {
            continue;
        }

        // Find the still-alive sets covered by the new seed. Membership is
        // O(1) for bitmap sets and O(log |R|) for sorted sets.
        let covered: Vec<usize> = pool.install(|| {
            use rayon::prelude::*;
            (0..sets.len())
                .into_par_iter()
                .filter(|&idx| alive[idx].load(Ordering::Relaxed) && sets.get(idx).contains(seed))
                .collect()
        });
        let covered_count = covered.len();
        covered_total += covered_count;

        let rebuild = exec.features.adaptive_counter_update
            && alive_count > 0
            && (covered_count as f64 / alive_count as f64) > exec.features.rebuild_threshold;

        if rebuild {
            // Rebuild: zero the counter and re-accumulate only the surviving
            // (alive and not covered) sets. Cheaper than decrementing when
            // the seed covers most of what is left.
            rebuilds += 1;
            for &idx in &covered {
                alive[idx].store(false, Ordering::Relaxed);
            }
            counter.reset();
            run_jobs(pool, threads, sets.len(), schedule, |worker, range| {
                let mut ops = 0u64;
                for idx in range.iter() {
                    if !alive[idx].load(Ordering::Relaxed) {
                        continue;
                    }
                    sets.get(idx).for_each(|v| {
                        counter.increment(v);
                        ops += 1;
                    });
                }
                per_thread_ops[worker].fetch_add(ops, Ordering::Relaxed);
                atomic_ops.fetch_add(ops, Ordering::Relaxed);
            });
        } else {
            // Decrement: touch only the covered sets (lines 11–18 of
            // Algorithm 2).
            decrements += 1;
            run_jobs(pool, threads, covered.len(), schedule, |worker, range| {
                let mut ops = 0u64;
                for pos in range.iter() {
                    let idx = covered[pos];
                    alive[idx].store(false, Ordering::Relaxed);
                    sets.get(idx).for_each(|v| {
                        counter.decrement(v);
                        ops += 1;
                    });
                }
                per_thread_ops[worker].fetch_add(ops, Ordering::Relaxed);
                atomic_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        alive_count -= covered_count;
    }

    let coverage_fraction =
        if sets.is_empty() { 0.0 } else { covered_total as f64 / sets.len() as f64 };
    SeedSelection {
        seeds,
        coverage_fraction,
        work: WorkProfile {
            per_thread_ops: per_thread_ops.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            atomic_ops: atomic_ops.load(Ordering::Relaxed),
            search_probes: 0,
        },
        counter_rebuilds: rebuilds,
        counter_decrements: decrements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Algorithm;
    use crate::selection::test_support::{collection, greedy_reference};
    use proptest::prelude::*;

    fn pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap()
    }

    fn exec(threads: usize) -> ExecutionConfig {
        ExecutionConfig::new(Algorithm::Efficient, threads)
    }

    #[test]
    fn picks_the_most_frequent_vertex_first_figure3_example() {
        let sets =
            collection(6, &[&[0, 1], &[1], &[2, 4], &[1, 4], &[1, 4, 5], &[3], &[0, 3], &[2]]);
        let p = pool(3);
        let result = select_seeds_efficient(&sets, 1, &exec(3), &p, None);
        assert_eq!(result.seeds, vec![1]);
        assert!((result.coverage_fraction - 0.5).abs() < 1e-12);
        assert!(result.work.atomic_ops > 0);
    }

    #[test]
    fn matches_reference_greedy() {
        let sets = collection(
            8,
            &[&[0, 1, 2], &[2, 3], &[3, 4, 5], &[5], &[5, 6], &[6, 7], &[0, 7], &[1, 3, 5, 7]],
        );
        let (ref_seeds, ref_cov) = greedy_reference(&sets, 3);
        let p = pool(2);
        let result = select_seeds_efficient(&sets, 3, &exec(2), &p, None);
        assert_eq!(result.seeds, ref_seeds);
        assert!((result.coverage_fraction - ref_cov).abs() < 1e-12);
    }

    #[test]
    fn fused_counter_gives_the_same_answer_and_preserves_the_base_counter() {
        let sets =
            collection(6, &[&[0, 1], &[1], &[2, 4], &[1, 4], &[1, 4, 5], &[3], &[0, 3], &[2]]);
        // Build the "fused" counter the way sampling would have.
        let base = GlobalCounter::new(6);
        for set in sets.iter() {
            for v in set.iter() {
                base.increment(v);
            }
        }
        let before = base.snapshot();
        let p = pool(2);
        let with_fusion = select_seeds_efficient(&sets, 2, &exec(2), &p, Some(&base));
        let without = select_seeds_efficient(&sets, 2, &exec(2), &p, None);
        assert_eq!(with_fusion.seeds, without.seeds);
        assert_eq!(base.snapshot(), before, "selection must not clobber the sampled counts");
    }

    #[test]
    fn adaptive_update_rebuilds_on_skewed_input() {
        // One vertex (0) appears in almost every set, so removing it covers
        // >90% of the sets and the adaptive policy must choose a rebuild.
        let owned: Vec<Vec<u32>> = (0..40)
            .map(|i| if i < 38 { vec![0, (i % 10) + 1] } else { vec![(i % 10) + 1] })
            .collect();
        let slices: Vec<&[u32]> = owned.iter().map(|v| v.as_slice()).collect();
        let sets = collection(12, &slices);

        let mut cfg = exec(2);
        cfg.features.adaptive_counter_update = true;
        cfg.features.rebuild_threshold = 0.5;
        let p = pool(2);
        let adaptive = select_seeds_efficient(&sets, 2, &cfg, &p, None);
        assert!(adaptive.counter_rebuilds >= 1, "expected at least one rebuild");

        cfg.features.adaptive_counter_update = false;
        let plain = select_seeds_efficient(&sets, 2, &cfg, &p, None);
        assert_eq!(plain.counter_rebuilds, 0);
        assert_eq!(adaptive.seeds, plain.seeds, "adaptive update must not change the result");
        assert!((adaptive.coverage_fraction - plain.coverage_fraction).abs() < 1e-12);
    }

    #[test]
    fn static_and_dynamic_schedules_agree() {
        let sets = collection(
            10,
            &[&[0, 1, 2], &[3, 4], &[5, 6, 7, 8], &[9], &[0, 9], &[4, 5], &[2, 3, 4]],
        );
        let p = pool(3);
        let mut dynamic_cfg = exec(3);
        dynamic_cfg.features.dynamic_balancing = true;
        let mut static_cfg = exec(3);
        static_cfg.features.dynamic_balancing = false;
        let a = select_seeds_efficient(&sets, 3, &dynamic_cfg, &p, None);
        let b = select_seeds_efficient(&sets, 3, &static_cfg, &p, None);
        assert_eq!(a.seeds, b.seeds);
    }

    #[test]
    fn zero_k_and_empty_collection() {
        let sets = collection(4, &[&[0, 1]]);
        let p = pool(1);
        assert!(select_seeds_efficient(&sets, 0, &exec(1), &p, None).seeds.is_empty());
        let empty = collection(4, &[]);
        let r = select_seeds_efficient(&empty, 2, &exec(1), &p, None);
        assert_eq!(r.seeds.len(), 2);
        assert_eq!(r.coverage_fraction, 0.0);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let owned: Vec<Vec<u32>> = (0..30)
            .map(|i| (0..(i % 5 + 1)).map(|j| ((i * 7 + j * 3) % 25) as u32).collect())
            .collect();
        let slices: Vec<&[u32]> = owned.iter().map(|v| v.as_slice()).collect();
        let sets = collection(25, &slices);
        let baseline = select_seeds_efficient(&sets, 5, &exec(1), &pool(1), None);
        for threads in [2usize, 4, 8] {
            let r = select_seeds_efficient(&sets, 5, &exec(threads), &pool(threads), None);
            assert_eq!(r.seeds, baseline.seeds, "threads={threads}");
        }
    }

    #[test]
    fn work_does_not_grow_with_thread_count() {
        // The contrast with the Ripples baseline: the initial counting work
        // is independent of the number of threads (each set is touched once).
        let owned: Vec<Vec<u32>> = (0..60)
            .map(|i| vec![i as u32 % 40, (i + 1) as u32 % 40, (i + 2) as u32 % 40])
            .collect();
        let slices: Vec<&[u32]> = owned.iter().map(|v| v.as_slice()).collect();
        let sets = collection(40, &slices);
        let w1 = select_seeds_efficient(&sets, 1, &exec(1), &pool(1), None).work.total_ops();
        let w4 = select_seeds_efficient(&sets, 1, &exec(4), &pool(4), None).work.total_ops();
        assert_eq!(w1, w4, "total work must be thread-count independent");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn matches_reference_on_random_instances(
            raw_sets in proptest::collection::vec(
                proptest::collection::hash_set(0u32..30, 1..10),
                1..25,
            ),
            k in 1usize..5,
            threads in 1usize..4,
        ) {
            let owned: Vec<Vec<u32>> = raw_sets.iter().map(|s| s.iter().copied().collect()).collect();
            let slices: Vec<&[u32]> = owned.iter().map(|v| v.as_slice()).collect();
            let sets = collection(30, &slices);
            let (ref_seeds, ref_cov) = greedy_reference(&sets, k);
            let p = pool(threads);
            let result = select_seeds_efficient(&sets, k, &exec(threads), &p, None);
            prop_assert_eq!(result.seeds, ref_seeds);
            prop_assert!((result.coverage_fraction - ref_cov).abs() < 1e-9);
        }
    }
}

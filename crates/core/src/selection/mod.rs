//! `Find_Most_Influential_Set`: the greedy max-coverage seed selection over
//! the sampled RRR sets, in both of the paper's flavours.
//!
//! * [`ripples`] — the baseline: vertices partitioned across threads, every
//!   thread scans every RRR set, sorted sets probed with binary search,
//!   covered sets handled by decrementing per-thread counters.
//! * [`efficient`] — EfficientIMM: RRR sets partitioned across threads,
//!   concurrent atomic updates to one shared counter, two-level parallel max
//!   reduction, and the adaptive decrement-vs-rebuild counter update.
//!
//! Both return the same seeds for the same input (greedy max coverage is
//! deterministic up to tie-breaking, and both kernels break ties toward the
//! smaller vertex id); the test suite asserts this equivalence, which is the
//! paper's "without sacrificing accuracy" claim.

pub mod efficient;
pub mod ripples;

use crate::counter::GlobalCounter;
use crate::params::{Algorithm, ExecutionConfig};
use crate::stats::WorkProfile;
use crate::NodeId;
use imm_rrr::RrrCollection;

/// Result of one seed-selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedSelection {
    /// The selected seeds, in selection order (most influential first).
    pub seeds: Vec<NodeId>,
    /// Fraction of RRR sets covered by the selected seeds — the estimator
    /// `F(S)` that IMM's guarantee is stated in terms of.
    pub coverage_fraction: f64,
    /// Per-thread operation counts.
    pub work: WorkProfile,
    /// How many counter rebuilds the adaptive update performed (EfficientIMM
    /// only).
    pub counter_rebuilds: usize,
    /// How many seed removals used plain decrements.
    pub counter_decrements: usize,
}

/// Select `k` seeds from `sets` using the engine chosen by `exec`.
///
/// When the EfficientIMM engine runs with kernel fusion the caller may pass
/// the already-populated counter in `fused_counter`; otherwise the kernel
/// builds its own occurrence counts.
pub fn select_seeds(
    sets: &RrrCollection,
    k: usize,
    exec: &ExecutionConfig,
    pool: &rayon::ThreadPool,
    fused_counter: Option<&GlobalCounter>,
) -> SeedSelection {
    match exec.algorithm {
        Algorithm::Ripples => ripples::select_seeds_ripples(sets, k, exec.threads, pool),
        Algorithm::Efficient => {
            efficient::select_seeds_efficient(sets, k, exec, pool, fused_counter)
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use imm_rrr::RrrSet;

    /// Build a collection from explicit vertex lists.
    pub fn collection(num_nodes: usize, sets: &[&[NodeId]]) -> RrrCollection {
        let mut c = RrrCollection::new(num_nodes);
        for s in sets {
            c.push(RrrSet::sorted(s.to_vec()));
        }
        c
    }

    /// Reference greedy max-coverage implementation: straightforward,
    /// sequential, obviously correct. Both parallel kernels must match it.
    pub fn greedy_reference(sets: &RrrCollection, k: usize) -> (Vec<NodeId>, f64) {
        let n = sets.num_nodes();
        let mut alive: Vec<bool> = vec![true; sets.len()];
        let mut seeds = Vec::new();
        let mut covered = 0usize;
        for _ in 0..k.min(n) {
            let mut counts = vec![0u64; n];
            for (idx, set) in sets.iter().enumerate() {
                if alive[idx] {
                    for v in set.iter() {
                        counts[v as usize] += 1;
                    }
                }
            }
            let (best, best_count) = counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(v, &c)| (v as NodeId, c))
                .unwrap_or((0, 0));
            seeds.push(best);
            if best_count == 0 {
                continue;
            }
            for (idx, set) in sets.iter().enumerate() {
                if alive[idx] && set.contains(best) {
                    alive[idx] = false;
                    covered += 1;
                }
            }
        }
        let fraction = if sets.is_empty() { 0.0 } else { covered as f64 / sets.len() as f64 };
        (seeds, fraction)
    }

    #[test]
    fn reference_greedy_on_paper_figure_3_example() {
        // The RRR sets from Figure 3 of the paper:
        // {0,1},{1},{2,4},{1,4},{1,4,5},{3},{0,3},{2}
        let sets =
            collection(6, &[&[0, 1], &[1], &[2, 4], &[1, 4], &[1, 4, 5], &[3], &[0, 3], &[2]]);
        // Occurrence counts are [2,4,2,2,3,1] -> the first seed is vertex 1.
        let (seeds, fraction) = greedy_reference(&sets, 1);
        assert_eq!(seeds, vec![1]);
        assert!((fraction - 0.5).abs() < 1e-12, "vertex 1 covers 4 of 8 sets");
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::params::{Algorithm, ExecutionConfig};

    fn pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap()
    }

    #[test]
    fn dispatch_runs_both_engines() {
        let sets =
            collection(6, &[&[0, 1], &[1], &[2, 4], &[1, 4], &[1, 4, 5], &[3], &[0, 3], &[2]]);
        for algorithm in [Algorithm::Ripples, Algorithm::Efficient] {
            let exec = ExecutionConfig::new(algorithm, 2);
            let p = pool(2);
            let result = select_seeds(&sets, 2, &exec, &p, None);
            assert_eq!(result.seeds.len(), 2);
            assert_eq!(result.seeds[0], 1, "{algorithm:?} must pick vertex 1 first");
            assert!(result.coverage_fraction > 0.0);
        }
    }
}

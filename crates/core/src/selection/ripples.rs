//! The Ripples baseline `Find_Most_Influential_Set` kernel.
//!
//! Faithful to the scheme the paper profiles (§II-B, §III):
//!
//! * the **vertex space** is partitioned across threads; each thread owns a
//!   contiguous range of vertex counters;
//! * to build its counters every thread scans **all** RRR sets, so the total
//!   counting work grows linearly with the thread count — the root cause of
//!   the baseline's scalability collapse;
//! * after a seed is chosen, every thread again scans all still-alive sets,
//!   probing each sorted set with **binary search** to see whether it
//!   contains the seed, and decrements its own counters for the covered
//!   sets' members.
//!
//! The kernel is correct (it returns the same greedy solution as
//! EfficientIMM); it is the memory-traversal pattern that differs, which is
//! what the cache-miss and scaling experiments measure.

use crate::selection::SeedSelection;
use crate::stats::WorkProfile;
use crate::NodeId;
use imm_graph::block_ranges;
use imm_rrr::{RrrCollection, SetView};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Select `k` seeds with the Ripples-style vertex-partitioned kernel.
pub fn select_seeds_ripples(
    sets: &RrrCollection,
    k: usize,
    threads: usize,
    pool: &rayon::ThreadPool,
) -> SeedSelection {
    let threads = threads.max(1);
    let n = sets.num_nodes();
    if n == 0 || k == 0 {
        return SeedSelection {
            seeds: Vec::new(),
            coverage_fraction: 0.0,
            work: WorkProfile::new(threads),
            counter_rebuilds: 0,
            counter_decrements: 0,
        };
    }

    let ranges = block_ranges(n, threads);
    let per_thread_ops: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let search_probes = AtomicU64::new(0);

    // Thread-local counters over each thread's vertex range.
    let local_counts: Vec<Mutex<Vec<u64>>> =
        ranges.iter().map(|r| Mutex::new(vec![0u64; r.len()])).collect();

    // Initial counting: every thread traverses every RRR set and tallies the
    // members that fall inside its vertex range.
    pool.scope(|s| {
        for (t, range) in ranges.iter().enumerate() {
            let local_counts = &local_counts;
            let per_thread_ops = &per_thread_ops;
            s.spawn(move |_| {
                let mut counts = local_counts[t].lock();
                let mut ops = 0u64;
                for set in sets.iter() {
                    set.for_each(|v| {
                        ops += 1;
                        let vi = v as usize;
                        if vi >= range.start && vi < range.end {
                            counts[vi - range.start] += 1;
                        }
                    });
                }
                per_thread_ops[t].fetch_add(ops, Ordering::Relaxed);
            });
        }
    });

    let alive: Vec<AtomicBool> = (0..sets.len()).map(|_| AtomicBool::new(true)).collect();
    let mut seeds = Vec::with_capacity(k);
    let mut covered_total = 0usize;

    for _ in 0..k.min(n) {
        // Regional maxima, then a global reduction (same two-level shape the
        // original OpenMP code uses; cheap compared with the scans).
        let mut best: Option<(NodeId, u64)> = None;
        for (t, range) in ranges.iter().enumerate() {
            let counts = local_counts[t].lock();
            for (offset, &c) in counts.iter().enumerate() {
                let v = (range.start + offset) as NodeId;
                if best.map(|(bv, bc)| c > bc || (c == bc && v < bv)).unwrap_or(true) {
                    best = Some((v, c));
                }
            }
        }
        let (seed, seed_count) = best.expect("non-empty vertex set");
        seeds.push(seed);

        if seed_count == 0 {
            // No alive set contains any remaining vertex; later seeds are
            // arbitrary (counts all zero), keep selecting deterministically.
            continue;
        }

        // Decouple the chosen seed: every thread rescans all alive sets,
        // probes for the seed with binary search, and decrements its own
        // counters for members of covered sets. The alive view is snapshotted
        // before the scan so every thread processes the same covered sets
        // even though the flags are flipped concurrently.
        let alive_snapshot: Vec<bool> = alive.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        let covered_this_round = AtomicU64::new(0);
        pool.scope(|s| {
            for (t, range) in ranges.iter().enumerate() {
                let local_counts = &local_counts;
                let per_thread_ops = &per_thread_ops;
                let search_probes = &search_probes;
                let alive = &alive;
                let alive_snapshot = &alive_snapshot;
                let covered_this_round = &covered_this_round;
                s.spawn(move |_| {
                    let mut counts = local_counts[t].lock();
                    let mut ops = 0u64;
                    let mut probes = 0u64;
                    for (idx, set) in sets.iter().enumerate() {
                        if !alive_snapshot[idx] {
                            continue;
                        }
                        // Binary-search probe (the sorted representation's
                        // O(log |R|) membership check).
                        probes += probe_cost(set);
                        if set.contains(seed) {
                            set.for_each(|v| {
                                ops += 1;
                                let vi = v as usize;
                                if vi >= range.start && vi < range.end {
                                    counts[vi - range.start] =
                                        counts[vi - range.start].saturating_sub(1);
                                }
                            });
                            // Every thread discovers the same covered sets;
                            // the swap claims each flag transition exactly
                            // once so the coverage count stays exact.
                            if alive[idx].swap(false, Ordering::Relaxed) {
                                covered_this_round.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    per_thread_ops[t].fetch_add(ops + probes, Ordering::Relaxed);
                    search_probes.fetch_add(probes, Ordering::Relaxed);
                });
            }
        });
        covered_total += covered_this_round.load(Ordering::Relaxed) as usize;
    }

    let coverage_fraction =
        if sets.is_empty() { 0.0 } else { covered_total as f64 / sets.len() as f64 };
    SeedSelection {
        seeds,
        coverage_fraction,
        work: WorkProfile {
            per_thread_ops: per_thread_ops.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            atomic_ops: 0,
            search_probes: search_probes.load(Ordering::Relaxed),
        },
        counter_rebuilds: 0,
        counter_decrements: k,
    }
}

/// The number of probes a binary search over this set costs (⌈log₂ |R|⌉,
/// minimum 1) — used for the work accounting the paper's memory-traversal
/// analysis is based on.
fn probe_cost(set: SetView<'_>) -> u64 {
    let len = set.len().max(1) as u64;
    (64 - len.leading_zeros() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::test_support::{collection, greedy_reference};
    use proptest::prelude::*;

    fn pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap()
    }

    #[test]
    fn picks_the_most_frequent_vertex_first() {
        let sets =
            collection(6, &[&[0, 1], &[1], &[2, 4], &[1, 4], &[1, 4, 5], &[3], &[0, 3], &[2]]);
        let p = pool(2);
        let result = select_seeds_ripples(&sets, 1, 2, &p);
        assert_eq!(result.seeds, vec![1]);
        assert!((result.coverage_fraction - 0.5).abs() < 1e-12);
        assert!(result.work.search_probes > 0);
    }

    #[test]
    fn matches_reference_greedy_on_small_instances() {
        let sets = collection(
            8,
            &[&[0, 1, 2], &[2, 3], &[3, 4, 5], &[5], &[5, 6], &[6, 7], &[0, 7], &[1, 3, 5, 7]],
        );
        let (ref_seeds, ref_cov) = greedy_reference(&sets, 3);
        let p = pool(3);
        let result = select_seeds_ripples(&sets, 3, 3, &p);
        assert_eq!(result.seeds, ref_seeds);
        assert!((result.coverage_fraction - ref_cov).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_distinct_vertices_still_returns_k_seeds() {
        let sets = collection(3, &[&[0], &[0], &[1]]);
        let p = pool(2);
        let result = select_seeds_ripples(&sets, 3, 2, &p);
        assert_eq!(result.seeds.len(), 3);
        assert_eq!(result.seeds[0], 0);
        assert!((result.coverage_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_collection_or_zero_k() {
        let sets = collection(5, &[]);
        let p = pool(1);
        let result = select_seeds_ripples(&sets, 2, 1, &p);
        assert_eq!(result.seeds.len(), 2);
        assert_eq!(result.coverage_fraction, 0.0);

        let sets = collection(5, &[&[1, 2]]);
        let result = select_seeds_ripples(&sets, 0, 1, &p);
        assert!(result.seeds.is_empty());
    }

    #[test]
    fn counting_work_grows_with_thread_count() {
        // The baseline's defining inefficiency: total operations scale with
        // the number of threads because every thread scans every set.
        let sets = collection(
            100,
            &(0..50)
                .map(|i| vec![i as NodeId, (i + 1) as NodeId, (i + 2) as NodeId])
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice())
                .collect::<Vec<_>>(),
        );
        let p1 = pool(1);
        let p4 = pool(4);
        let w1 = select_seeds_ripples(&sets, 1, 1, &p1).work.total_ops();
        let w4 = select_seeds_ripples(&sets, 1, 4, &p4).work.total_ops();
        assert!(
            w4 as f64 > 2.5 * w1 as f64,
            "4-thread work ({w4}) should be ~4x the 1-thread work ({w1})"
        );
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let sets = collection(
            20,
            &[
                &[0, 1, 2, 3],
                &[1, 2],
                &[4, 5, 6],
                &[7],
                &[8, 9, 10, 11],
                &[1, 9],
                &[12, 13],
                &[14, 15, 16],
                &[17, 18, 19],
                &[2, 9, 16],
            ],
        );
        let baseline = select_seeds_ripples(&sets, 4, 1, &pool(1));
        for threads in [2usize, 3, 8] {
            let r = select_seeds_ripples(&sets, 4, threads, &pool(threads));
            assert_eq!(r.seeds, baseline.seeds, "threads={threads}");
            assert!((r.coverage_fraction - baseline.coverage_fraction).abs() < 1e-12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn matches_reference_on_random_instances(
            raw_sets in proptest::collection::vec(
                proptest::collection::hash_set(0u32..30, 1..10),
                1..25,
            ),
            k in 1usize..5,
            threads in 1usize..4,
        ) {
            let owned: Vec<Vec<NodeId>> = raw_sets.iter().map(|s| s.iter().copied().collect()).collect();
            let slices: Vec<&[NodeId]> = owned.iter().map(|v| v.as_slice()).collect();
            let sets = collection(30, &slices);
            let (ref_seeds, ref_cov) = greedy_reference(&sets, k);
            let p = pool(threads);
            let result = select_seeds_ripples(&sets, k, threads, &p);
            prop_assert_eq!(result.seeds, ref_seeds);
            prop_assert!((result.coverage_fraction - ref_cov).abs() < 1e-9);
        }
    }
}

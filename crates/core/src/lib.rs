//! # efficient-imm
//!
//! The core of the reproduction: the IMM influence-maximization algorithm
//! (Tang et al., SIGMOD'15) with two interchangeable parallel engines —
//!
//! * the **Ripples baseline** (Minutoli et al. 2019): vertex-partitioned
//!   occurrence counting where every thread scans every RRR set, sorted RRR
//!   sets with binary-search membership, and separate sampling/selection
//!   kernels; and
//! * **EfficientIMM** (this paper): RRR-set partitioning with a shared atomic
//!   occurrence counter, two-level parallel max reduction, kernel fusion of
//!   sampling and counting, adaptive RRR-set representation, adaptive counter
//!   updates, and dynamic job balancing.
//!
//! The high-level entry point is [`run_imm`], which executes the full
//! martingale workflow (Algorithm 1 of the paper) under an
//! [`ExecutionConfig`] selecting the engine, thread count, and feature flags.
//! Lower-level building blocks (sampling, selection kernels, the atomic
//! counter) are public so the benchmark harness can exercise them in
//! isolation, which is how the paper's per-kernel tables and figures are
//! regenerated.
//!
//! ```
//! use efficient_imm::{run_imm, Algorithm, ExecutionConfig, ImmParams};
//! use imm_diffusion::DiffusionModel;
//! use imm_graph::{generators, CsrGraph, EdgeWeights};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let graph = CsrGraph::from_edge_list(&generators::social_network(500, 6, 0.3, &mut rng));
//! let weights = EdgeWeights::ic_weighted_cascade(&graph);
//! let params = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade).with_seed(7);
//! let exec = ExecutionConfig::new(Algorithm::Efficient, 2);
//! let result = run_imm(&graph, &weights, &params, &exec).unwrap();
//! assert_eq!(result.seeds.len(), 5);
//! ```

pub mod balance;
pub mod counter;
pub mod imm;
pub mod instrumented;
pub mod math;
pub mod metrics;
pub mod params;
pub mod sampling;
pub mod selection;
pub mod stats;

pub use counter::GlobalCounter;
pub use imm::{run_imm, ImmError, ImmResult};
pub use params::{Algorithm, EfficientFeatures, ExecutionConfig, ImmParams};
pub use sampling::{
    generate_indexed_rrr_set, generate_rrr_set, generate_rrr_set_traced, generate_rrr_sets,
    generate_rrr_sets_traced, SamplingOutput,
};
pub use selection::{select_seeds, SeedSelection};
pub use stats::{KernelTimings, RuntimeBreakdown, WorkProfile};

/// Vertex identifier, re-exported from `imm-graph`.
pub type NodeId = imm_graph::NodeId;

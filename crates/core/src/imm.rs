//! The full IMM workflow (Algorithm 1 of the paper): the martingale sampling
//! phase that determines θ, followed by the final seed selection.

use crate::balance::Schedule;
use crate::counter::GlobalCounter;
use crate::math;
use crate::params::{Algorithm, ExecutionConfig, ImmParams};
use crate::sampling::{generate_rrr_sets, generate_rrr_sets_traced, SamplingConfig};
use crate::selection::select_seeds;
use crate::stats::RuntimeBreakdown;
use crate::NodeId;
use imm_graph::{CsrGraph, EdgeWeights};
use imm_rrr::{CoverageStats, RrrCollection, SetProvenance};
use std::time::Instant;

/// Errors returned by [`run_imm`].
#[derive(Debug, Clone, PartialEq)]
pub enum ImmError {
    /// The parameters do not fit the graph (k too large, ε out of range, …).
    InvalidParameters(String),
}

impl std::fmt::Display for ImmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImmError::InvalidParameters(msg) => write!(f, "invalid IMM parameters: {msg}"),
        }
    }
}

impl std::error::Error for ImmError {}

/// The outcome of one IMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct ImmResult {
    /// The `k` selected seeds, most influential first.
    pub seeds: Vec<NodeId>,
    /// Estimated influence spread `n · F(S)` of the seed set.
    pub estimated_influence: f64,
    /// Fraction of RRR sets covered by the seed set.
    pub coverage_fraction: f64,
    /// Final number of RRR sets (θ) the guarantee was established with.
    pub theta: usize,
    /// Per-kernel timings, work profiles and memory accounting.
    pub breakdown: RuntimeBreakdown,
    /// RRR-set statistics (the paper's Table I columns).
    pub rrr_stats: CoverageStats,
    /// Which engine produced the result.
    pub algorithm: Algorithm,
    /// Number of worker threads used.
    pub threads: usize,
    /// The sampled RRR collection, kept only when
    /// [`ExecutionConfig::retain_rrr_sets`] is set — the input for building a
    /// reusable `imm-service` sketch index without resampling.
    pub rrr_sets: Option<RrrCollection>,
    /// Per-set sampling provenance aligned with `rrr_sets`, recorded only
    /// when [`ExecutionConfig::trace_provenance`] is set — the input for
    /// building an *incrementally refreshable* `imm-service` index.
    pub provenance: Option<Vec<SetProvenance>>,
}

/// Run the complete IMM workflow on `graph` with the given parameters and
/// execution configuration.
///
/// Both engines execute the same statistical procedure (Tang et al.'s
/// sampling/selection phases with identical θ schedules and RNG streams);
/// they differ only in how the two kernels are parallelized, so their seed
/// sets for the same input coincide up to ties.
pub fn run_imm(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    params: &ImmParams,
    exec: &ExecutionConfig,
) -> Result<ImmResult, ImmError> {
    params.validate(graph.num_nodes()).map_err(ImmError::InvalidParameters)?;

    let pool = exec.build_pool();
    let n = graph.num_nodes();
    let k = params.k;
    let ell = math::adjusted_ell(params.ell, n);
    let epsilon = params.epsilon;

    let mut breakdown = RuntimeBreakdown::default();
    let schedule = if exec.features.dynamic_balancing {
        Schedule::Dynamic { chunk: exec.job_chunk.max(1) }
    } else {
        Schedule::Static
    };
    let policy = exec.features.representation_policy();

    // The fused counter accumulates occurrence counts as sets are generated
    // (EfficientIMM's kernel fusion); the Ripples engine never uses it.
    let use_fusion = exec.algorithm == Algorithm::Efficient && exec.features.kernel_fusion;
    let fused_counter = if use_fusion { Some(GlobalCounter::new(n)) } else { None };

    let mut sets = RrrCollection::new(n);
    let mut provenance: Option<Vec<SetProvenance>> = exec.trace_provenance.then(Vec::new);
    let mut lower_bound = 1.0f64;
    let mut converged = false;

    // Sampling phase: geometrically growing θ until the greedy solution on
    // the current sample certifies a lower bound on OPT.
    let iterations = math::sampling_iterations(n);
    for i in 1..=iterations {
        let target = math::theta_for_iteration(n, k, epsilon, ell, i);
        if target > sets.len() {
            let missing = target - sets.len();
            let t0 = Instant::now();
            let sampler =
                if exec.trace_provenance { generate_rrr_sets_traced } else { generate_rrr_sets };
            let out = sampler(
                graph,
                weights,
                missing,
                sets.len(),
                &SamplingConfig {
                    model: params.model,
                    rng_seed: params.rng_seed,
                    policy,
                    schedule,
                    threads: exec.threads,
                    fused_counter: fused_counter.as_ref(),
                },
                &pool,
            );
            breakdown.timings.generate_rrrsets += t0.elapsed();
            breakdown.sampling_work.merge(&out.work);
            if let (Some(log), Some(mut records)) = (provenance.as_mut(), out.provenance) {
                log.append(&mut records);
            }
            sets.extend_from(out.sets);
        }
        breakdown.sampling_iterations = i;

        let t0 = Instant::now();
        let selection = select_seeds(&sets, k, exec, &pool, fused_counter.as_ref());
        breakdown.timings.find_most_influential += t0.elapsed();
        breakdown.selection_work.merge(&selection.work);
        breakdown.counter_rebuilds += selection.counter_rebuilds;
        breakdown.counter_decrements += selection.counter_decrements;

        if math::sampling_converged(n, selection.coverage_fraction, epsilon, i) {
            lower_bound = math::opt_lower_bound(n, selection.coverage_fraction, epsilon);
            converged = true;
            break;
        }
    }
    if !converged {
        // Fall back to the weakest admissible bound (OPT >= k for any graph
        // with at least k vertices reached by their own RRR sets).
        lower_bound = k as f64;
    }

    // Final phase: top up to θ = λ* / LB sets and select the final seeds.
    let t_other = Instant::now();
    let theta = math::final_theta(n, k, epsilon, ell, lower_bound);
    breakdown.timings.other += t_other.elapsed();

    if theta > sets.len() {
        let missing = theta - sets.len();
        let t0 = Instant::now();
        let sampler =
            if exec.trace_provenance { generate_rrr_sets_traced } else { generate_rrr_sets };
        let out = sampler(
            graph,
            weights,
            missing,
            sets.len(),
            &SamplingConfig {
                model: params.model,
                rng_seed: params.rng_seed,
                policy,
                schedule,
                threads: exec.threads,
                fused_counter: fused_counter.as_ref(),
            },
            &pool,
        );
        breakdown.timings.generate_rrrsets += t0.elapsed();
        breakdown.sampling_work.merge(&out.work);
        if let (Some(log), Some(mut records)) = (provenance.as_mut(), out.provenance) {
            log.append(&mut records);
        }
        sets.extend_from(out.sets);
    }

    let t0 = Instant::now();
    let selection = select_seeds(&sets, k, exec, &pool, fused_counter.as_ref());
    breakdown.timings.find_most_influential += t0.elapsed();
    breakdown.selection_work.merge(&selection.work);
    breakdown.counter_rebuilds += selection.counter_rebuilds;
    breakdown.counter_decrements += selection.counter_decrements;

    breakdown.rrr_sets_generated = sets.len();
    breakdown.rrr_memory_bytes = sets.memory_bytes();
    let rrr_stats = sets.coverage_stats();

    Ok(ImmResult {
        estimated_influence: n as f64 * selection.coverage_fraction,
        coverage_fraction: selection.coverage_fraction,
        seeds: selection.seeds,
        theta: sets.len(),
        breakdown,
        rrr_stats,
        algorithm: exec.algorithm,
        threads: exec.threads,
        rrr_sets: exec.retain_rrr_sets.then_some(sets),
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imm_diffusion::DiffusionModel;
    use imm_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_social_graph(n: usize, seed: u64) -> (CsrGraph, EdgeWeights) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = CsrGraph::from_edge_list(&generators::social_network(n, 6, 0.3, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);
        (g, w)
    }

    #[test]
    fn rejects_invalid_parameters() {
        let (g, w) = small_social_graph(100, 1);
        let params = ImmParams::new(1_000, 0.5, DiffusionModel::IndependentCascade);
        let exec = ExecutionConfig::new(Algorithm::Efficient, 1);
        assert!(matches!(run_imm(&g, &w, &params, &exec), Err(ImmError::InvalidParameters(_))));
    }

    #[test]
    fn returns_k_distinct_high_value_seeds() {
        let (g, w) = small_social_graph(400, 2);
        let params = ImmParams::new(8, 0.5, DiffusionModel::IndependentCascade).with_seed(3);
        let exec = ExecutionConfig::new(Algorithm::Efficient, 2);
        let result = run_imm(&g, &w, &params, &exec).unwrap();
        assert_eq!(result.seeds.len(), 8);
        let unique: std::collections::HashSet<_> = result.seeds.iter().collect();
        assert_eq!(unique.len(), 8, "seeds must be distinct on a graph this large");
        assert!(result.estimated_influence > 8.0, "seeds must reach beyond themselves");
        assert!(result.theta > 0);
        assert!(result.breakdown.rrr_sets_generated >= result.theta);
        assert!(result.coverage_fraction > 0.0 && result.coverage_fraction <= 1.0);
    }

    #[test]
    fn both_engines_find_seed_sets_of_equivalent_quality() {
        let (g, w) = small_social_graph(300, 4);
        let params = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade).with_seed(11);
        let ripples =
            run_imm(&g, &w, &params, &ExecutionConfig::new(Algorithm::Ripples, 2)).unwrap();
        let efficient =
            run_imm(&g, &w, &params, &ExecutionConfig::new(Algorithm::Efficient, 2)).unwrap();
        // Identical sampling streams and greedy tie-breaking => identical
        // seed sets.
        assert_eq!(ripples.seeds, efficient.seeds);
        assert!((ripples.coverage_fraction - efficient.coverage_fraction).abs() < 1e-9);
        assert_eq!(ripples.theta, efficient.theta);
    }

    #[test]
    fn results_are_reproducible_across_thread_counts() {
        let (g, w) = small_social_graph(250, 5);
        let params = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade).with_seed(21);
        let a = run_imm(&g, &w, &params, &ExecutionConfig::new(Algorithm::Efficient, 1)).unwrap();
        let b = run_imm(&g, &w, &params, &ExecutionConfig::new(Algorithm::Efficient, 4)).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.theta, b.theta);
    }

    #[test]
    fn linear_threshold_model_works_end_to_end() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = CsrGraph::from_edge_list(&generators::social_network(300, 6, 0.3, &mut rng));
        let w = EdgeWeights::lt_normalized(&g, &mut rng);
        let params = ImmParams::new(5, 0.5, DiffusionModel::LinearThreshold).with_seed(9);
        let exec = ExecutionConfig::new(Algorithm::Efficient, 2);
        let result = run_imm(&g, &w, &params, &exec).unwrap();
        assert_eq!(result.seeds.len(), 5);
        assert!(result.estimated_influence >= 5.0);
    }

    #[test]
    fn star_graph_selects_the_hub_first() {
        // Directed star (hub -> leaves) with certain activation: the hub's
        // RRR presence dominates, so it must be the first seed.
        let n = 60usize;
        let el = imm_graph::EdgeList::from_pairs(n, (1..n as u32).map(|i| (0u32, i)));
        let g = CsrGraph::from_edge_list(&el);
        let w = EdgeWeights::constant(&g, 1.0);
        let params = ImmParams::new(1, 0.5, DiffusionModel::IndependentCascade).with_seed(13);
        for algorithm in [Algorithm::Ripples, Algorithm::Efficient] {
            let result = run_imm(&g, &w, &params, &ExecutionConfig::new(algorithm, 2)).unwrap();
            assert_eq!(result.seeds, vec![0], "{algorithm:?} must select the hub");
            assert!((result.coverage_fraction - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn kernel_fusion_does_not_change_results() {
        let (g, w) = small_social_graph(200, 7);
        let params = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade).with_seed(31);
        let mut fused_cfg = ExecutionConfig::new(Algorithm::Efficient, 2);
        fused_cfg.features.kernel_fusion = true;
        let mut unfused_cfg = fused_cfg;
        unfused_cfg.features.kernel_fusion = false;
        let fused = run_imm(&g, &w, &params, &fused_cfg).unwrap();
        let unfused = run_imm(&g, &w, &params, &unfused_cfg).unwrap();
        assert_eq!(fused.seeds, unfused.seeds);
        assert_eq!(fused.theta, unfused.theta);
    }

    #[test]
    fn retained_collection_matches_the_run_and_is_off_by_default() {
        let (g, w) = small_social_graph(200, 9);
        let params = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade).with_seed(5);
        let retain = ExecutionConfig::new(Algorithm::Efficient, 2).with_retained_sets(true);
        let result = run_imm(&g, &w, &params, &retain).unwrap();
        let sets = result.rrr_sets.as_ref().expect("collection must be retained on opt-in");
        assert_eq!(sets.len(), result.theta);
        assert_eq!(sets.coverage_stats(), result.rrr_stats);
        assert!((sets.estimate_influence(&result.seeds) - result.estimated_influence).abs() < 1e-9);

        let drop_cfg = ExecutionConfig::new(Algorithm::Efficient, 2);
        assert!(run_imm(&g, &w, &params, &drop_cfg).unwrap().rrr_sets.is_none());
    }

    #[test]
    fn provenance_is_traced_on_opt_in_and_aligned_with_the_sets() {
        let (g, w) = small_social_graph(200, 10);
        let params = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade).with_seed(23);
        let exec = ExecutionConfig::new(Algorithm::Efficient, 2)
            .with_retained_sets(true)
            .with_provenance(true);
        let result = run_imm(&g, &w, &params, &exec).unwrap();
        let sets = result.rrr_sets.as_ref().expect("retained");
        let provenance = result.provenance.as_ref().expect("traced");
        assert_eq!(provenance.len(), sets.len());
        for (set, record) in sets.iter().zip(provenance) {
            assert!(set.contains(record.root), "each set contains its recorded root");
        }
        // Tracing must not perturb the RNG streams or the selection.
        let plain =
            run_imm(&g, &w, &params, &ExecutionConfig::new(Algorithm::Efficient, 2)).unwrap();
        assert_eq!(plain.seeds, result.seeds);
        assert_eq!(plain.theta, result.theta);
        assert!(plain.provenance.is_none(), "provenance is off by default");
    }

    #[test]
    fn breakdown_records_nonzero_activity() {
        let (g, w) = small_social_graph(200, 8);
        let params = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade).with_seed(17);
        let result =
            run_imm(&g, &w, &params, &ExecutionConfig::new(Algorithm::Efficient, 2)).unwrap();
        let b = &result.breakdown;
        assert!(b.sampling_iterations >= 1);
        assert!(b.sampling_work.total_ops() > 0);
        assert!(b.selection_work.total_ops() > 0);
        assert!(b.rrr_memory_bytes > 0);
        assert!(b.total_time().as_nanos() > 0);
        assert!(result.rrr_stats.count == result.theta);
        assert!(result.rrr_stats.avg_coverage > 0.0);
    }
}

//! `Generate_RRRsets`: reverse influence sampling for the IC and LT models.
//!
//! Every RRR set is rooted at a uniformly chosen vertex and collects the
//! vertices that would have *influenced* the root under one random
//! realization of the diffusion model:
//!
//! * **IC** — a reverse probabilistic BFS: each in-edge `(u, v)` of a reached
//!   vertex `v` is crossed with probability `p_uv`.
//! * **LT** — a reverse random walk: at each reached vertex, at most one
//!   in-neighbor is picked with probability proportional to its edge weight
//!   (stopping with the leftover probability), matching the live-edge
//!   characterization of the LT model.
//!
//! The parallel driver generates `count` sets with per-set RNG streams
//! derived from the base seed and the set's global index, and returns them
//! in global set-index order, so results are identical — order included —
//! for any thread count or schedule. When the EfficientIMM kernel fusion is
//! enabled the freshly generated set immediately increments the shared
//! [`GlobalCounter`] (Algorithm 3 of the paper) while it is still hot in
//! cache. [`generate_rrr_sets_traced`] additionally records each set's
//! provenance (root + probed-edge footprint), the substrate of the
//! incremental sketch refresh in `imm-service`.

use crate::balance::{run_jobs, Schedule};
use crate::counter::GlobalCounter;
use crate::stats::WorkProfile;
use crate::NodeId;
use imm_diffusion::DiffusionModel;
use imm_graph::{CsrGraph, EdgeWeights};
use imm_rrr::{AdaptivePolicy, EdgeFootprint, NoTrace, ProbeTrace, RrrCollection, SetProvenance};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Epoch-stamped visited marker reused across RRR-set generations by one
/// worker, so each set costs O(set size) rather than O(|V|) to reset.
#[derive(Debug, Clone)]
pub struct VisitMarker {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitMarker {
    /// Marker for a graph of `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        VisitMarker { stamps: vec![0; num_nodes], epoch: 0 }
    }

    /// Start a fresh visitation (cheap: bumps the epoch; only wraps rarely).
    pub fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap-around: clear and restart from epoch 1.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Whether `v` was visited in the current epoch.
    #[inline]
    pub fn visited(&self, v: NodeId) -> bool {
        self.stamps[v as usize] == self.epoch
    }

    /// Mark `v` visited; returns `true` if it was not yet visited.
    #[inline]
    pub fn visit(&mut self, v: NodeId) -> bool {
        let slot = &mut self.stamps[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Generate one RRR set rooted at `root`. Returns the reached vertices in
/// visitation order (the root first). `marker` must cover the graph and is
/// reset internally.
pub fn generate_rrr_set<R: Rng + ?Sized>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    root: NodeId,
    rng: &mut R,
    marker: &mut VisitMarker,
) -> Vec<NodeId> {
    generate_rrr_set_traced(graph, weights, model, root, rng, marker, &mut NoTrace)
}

/// [`generate_rrr_set`] with an edge-probe trace.
///
/// `trace` receives every edge whose presence or weight influenced the
/// RNG-visible course of the traversal: for IC, each in-edge probed with a
/// fresh draw; for LT, each in-edge scanned while the per-step draw was being
/// consumed. The [`NoTrace`] instantiation compiles to the untraced kernel,
/// so the hot batch path pays nothing.
pub fn generate_rrr_set_traced<R: Rng + ?Sized, T: ProbeTrace>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    root: NodeId,
    rng: &mut R,
    marker: &mut VisitMarker,
    trace: &mut T,
) -> Vec<NodeId> {
    let mut set = Vec::with_capacity(16);
    generate_rrr_set_into(graph, weights, model, root, rng, marker, trace, &mut set);
    set
}

/// Allocation-free form of [`generate_rrr_set_traced`]: the reached vertices
/// are **appended** to `out` (visitation order, root first) and the number
/// of appended members is returned. Bulk samplers point `out` at a growing
/// per-worker arena so generating a set costs no allocator round-trip.
///
/// The RNG draw sequence is identical to the owned-vector form — the BFS
/// frontier is the appended segment itself, walked by cursor.
#[allow(clippy::too_many_arguments)]
pub fn generate_rrr_set_into<R: Rng + ?Sized, T: ProbeTrace>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    root: NodeId,
    rng: &mut R,
    marker: &mut VisitMarker,
    trace: &mut T,
    out: &mut Vec<NodeId>,
) -> usize {
    marker.next_epoch();
    let appended = match model {
        DiffusionModel::IndependentCascade => {
            ic_reverse_bfs(graph, weights, root, rng, marker, trace, out)
        }
        DiffusionModel::LinearThreshold => {
            lt_reverse_walk(graph, weights, root, rng, marker, trace, out)
        }
    };
    // This is the one choke point every sampling path funnels through
    // (bulk, refresh resample, one-shot), so the instrumentation budget —
    // two relaxed atomics per generated set — is paid exactly once here.
    crate::metrics::SETS_SAMPLED.increment();
    crate::metrics::SET_VERTICES.add(appended as u64);
    appended
}

#[allow(clippy::too_many_arguments)]
fn ic_reverse_bfs<R: Rng + ?Sized, T: ProbeTrace>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    root: NodeId,
    rng: &mut R,
    marker: &mut VisitMarker,
    trace: &mut T,
    out: &mut Vec<NodeId>,
) -> usize {
    // The appended segment doubles as the BFS frontier: `cursor` walks it in
    // append order, which is exactly the push-back/pop-front order a queue
    // would produce — same traversal, same RNG draws, no queue allocation.
    let start = out.len();
    marker.visit(root);
    out.push(root);
    let mut cursor = start;

    while cursor < out.len() {
        let v = out[cursor];
        cursor += 1;
        for (u, eid) in graph.in_neighbors_with_edge_ids(v) {
            // An edge is probed (one RNG draw) only when its source is still
            // unvisited — exactly the edges the trace must capture.
            if !marker.visited(u) {
                trace.record_edge(u, v);
                if rng.gen::<f32>() < weights.weight(eid) {
                    marker.visit(u);
                    out.push(u);
                }
            }
        }
    }
    out.len() - start
}

#[allow(clippy::too_many_arguments)]
fn lt_reverse_walk<R: Rng + ?Sized, T: ProbeTrace>(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    root: NodeId,
    rng: &mut R,
    marker: &mut VisitMarker,
    trace: &mut T,
    out: &mut Vec<NodeId>,
) -> usize {
    let start = out.len();
    marker.visit(root);
    out.push(root);
    let mut current = root;

    loop {
        // Pick at most one in-neighbor with probability equal to its edge
        // weight; the remaining mass (1 - Σ w) stops the walk. Every scanned
        // edge (up to and including the pick) shapes the outcome, so each is
        // traced.
        let mut draw = rng.gen::<f32>();
        let mut picked: Option<NodeId> = None;
        for (u, eid) in graph.in_neighbors_with_edge_ids(current) {
            trace.record_edge(u, current);
            let w = weights.weight(eid);
            if draw < w {
                picked = Some(u);
                break;
            }
            draw -= w;
        }
        match picked {
            Some(u) => {
                if !marker.visit(u) {
                    // Already in the set: the live-edge path closed a cycle.
                    break;
                }
                out.push(u);
                current = u;
            }
            None => break,
        }
    }
    out.len() - start
}

/// Generate the RRR set with global index `set_index` of the deterministic
/// sampling stream `(base_seed, set_index)`, returning the member vertices
/// and the set's provenance (root + probed-edge footprint).
///
/// This is **the** definition of "set `i` of a sample": the bulk generator
/// and the incremental refresh in `imm-service` both route through it, so a
/// set resampled in isolation is byte-identical to the one a full rebuild at
/// the same index would produce.
pub fn generate_indexed_rrr_set(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    base_seed: u64,
    set_index: usize,
    marker: &mut VisitMarker,
) -> (Vec<NodeId>, SetProvenance) {
    let mut vertices = Vec::with_capacity(16);
    let record = generate_indexed_rrr_set_into(
        graph,
        weights,
        model,
        base_seed,
        set_index,
        marker,
        &mut vertices,
    );
    (vertices, record)
}

/// Allocation-free form of [`generate_indexed_rrr_set`]: appends the members
/// to `out` and returns the set's provenance (the appended length is
/// `out.len()`'s growth).
pub fn generate_indexed_rrr_set_into(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    model: DiffusionModel,
    base_seed: u64,
    set_index: usize,
    marker: &mut VisitMarker,
    out: &mut Vec<NodeId>,
) -> SetProvenance {
    let mut rng = rng_for_set(base_seed, set_index);
    let root = rng.gen_range(0..graph.num_nodes() as u32);
    let mut footprint = EdgeFootprint::new();
    generate_rrr_set_into(graph, weights, model, root, &mut rng, marker, &mut footprint, out);
    SetProvenance { root, footprint }
}

/// Result of a bulk sampling call.
#[derive(Debug)]
pub struct SamplingOutput {
    /// The generated sets, in global set-index order: position `i` holds the
    /// set of RNG stream `start_index + i` regardless of thread count or
    /// schedule.
    pub sets: RrrCollection,
    /// Per-thread operation counts of the generation (edge probes + counter
    /// updates when fused).
    pub work: WorkProfile,
    /// Per-set provenance aligned with `sets`, recorded only by
    /// [`generate_rrr_sets_traced`].
    pub provenance: Option<Vec<SetProvenance>>,
}

/// Options controlling a bulk sampling call.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig<'a> {
    /// Diffusion model to sample under.
    pub model: DiffusionModel,
    /// Base RNG seed (per-set streams are derived from it).
    pub rng_seed: u64,
    /// RRR-set representation policy.
    pub policy: AdaptivePolicy,
    /// Job schedule for distributing sets across workers.
    pub schedule: Schedule,
    /// Number of worker threads.
    pub threads: usize,
    /// When set, every generated set immediately increments this counter —
    /// the paper's kernel fusion.
    pub fused_counter: Option<&'a GlobalCounter>,
}

/// Generate `count` RRR sets (with global indices starting at `start_index`
/// for RNG-stream purposes) on `pool`.
///
/// The returned collection is in global set-index order for every thread
/// count and schedule: set `i` always came from RNG stream
/// `(rng_seed, start_index + i)`. That canonical order is what lets the
/// `imm-service` sketch index resample individual sets later.
pub fn generate_rrr_sets(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    count: usize,
    start_index: usize,
    config: &SamplingConfig<'_>,
    pool: &rayon::ThreadPool,
) -> SamplingOutput {
    generate_rrr_sets_impl(graph, weights, count, start_index, config, pool, false)
}

/// [`generate_rrr_sets`] with per-set provenance recording: the output's
/// `provenance` holds each set's root and probed-edge footprint, aligned
/// with the collection.
pub fn generate_rrr_sets_traced(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    count: usize,
    start_index: usize,
    config: &SamplingConfig<'_>,
    pool: &rayon::ThreadPool,
) -> SamplingOutput {
    generate_rrr_sets_impl(graph, weights, count, start_index, config, pool, true)
}

/// One worker slot's accumulated output: a flat vertex arena holding every
/// **list-bound** set the slot generated (each segment already sorted), the
/// directory locating each segment by its global job index, the bitmaps of
/// the slot's heavy sets (built in the worker while the set was hot — their
/// members never enter an arena), and per-set provenance when tracing.
#[derive(Debug, Default)]
struct SlotOutput {
    arena: Vec<NodeId>,
    /// `(job, start, len)` into `arena` — list sets only.
    lists: Vec<(usize, u32, u32)>,
    /// `(job, bitmap)` — bitmap-bound (heavy) sets.
    bitmaps: Vec<(usize, imm_rrr::BitSet)>,
    /// `(job, record)` in generation order, recorded only when tracing.
    provenance: Vec<(usize, SetProvenance)>,
}

fn generate_rrr_sets_impl(
    graph: &CsrGraph,
    weights: &EdgeWeights,
    count: usize,
    start_index: usize,
    config: &SamplingConfig<'_>,
    pool: &rayon::ThreadPool,
    trace: bool,
) -> SamplingOutput {
    crate::metrics::register();
    let threads = config.threads.max(1);
    let num_nodes = graph.num_nodes();
    let slots: Vec<Mutex<SlotOutput>> =
        (0..threads).map(|_| Mutex::new(SlotOutput::default())).collect();
    // Epoch-stamped visit markers are O(|V|) to build, so chunks check one
    // out of a shared pool instead of allocating their own.
    let markers: Mutex<Vec<VisitMarker>> = Mutex::new(Vec::new());
    let per_worker_ops: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let atomic_ops = AtomicU64::new(0);

    run_jobs(pool, threads, count, config.schedule, |worker, range| {
        let mut marker = markers.lock().pop().unwrap_or_else(|| VisitMarker::new(num_nodes));
        // Chunk-local arena: every list-bound set of the chunk is appended
        // here, sorted in place, and spliced into the slot arena in one bulk
        // copy under the lock. A bitmap-bound (heavy) set is scattered into
        // its side-table bitmap right away — while it is hot — and its
        // segment rolled back, so the biggest sets are never copied through
        // the arenas at all. No per-set allocation for list sets.
        let mut buf: Vec<NodeId> = Vec::with_capacity(16 * range.len());
        let mut entries: Vec<(usize, u32, u32)> = Vec::with_capacity(range.len());
        let mut heavy: Vec<(usize, imm_rrr::BitSet)> = Vec::new();
        let mut records: Vec<(usize, SetProvenance)> = Vec::new();
        let mut local_ops = 0u64;
        for job in range.iter() {
            let set_index = start_index + job;
            let start = buf.len();
            if trace {
                let record = generate_indexed_rrr_set_into(
                    graph,
                    weights,
                    config.model,
                    config.rng_seed,
                    set_index,
                    &mut marker,
                    &mut buf,
                );
                records.push((job, record));
            } else {
                // Same draws as the traced path, no footprint bookkeeping.
                let mut rng = rng_for_set(config.rng_seed, set_index);
                let root = rng.gen_range(0..num_nodes as u32);
                generate_rrr_set_into(
                    graph,
                    weights,
                    config.model,
                    root,
                    &mut rng,
                    &mut marker,
                    &mut NoTrace,
                    &mut buf,
                );
            }
            let len = buf.len() - start;
            local_ops += len as u64;
            if let Some(counter) = config.fused_counter {
                // Kernel fusion: the fresh segment increments the shared
                // counter while it is still hot in cache.
                for &v in &buf[start..] {
                    counter.increment(v);
                }
                atomic_ops.fetch_add(len as u64, Ordering::Relaxed);
            }
            match config.policy.choose(len, num_nodes) {
                imm_rrr::Representation::SortedList => {
                    buf[start..].sort_unstable();
                    entries.push((job, start as u32, len as u32));
                }
                imm_rrr::Representation::Bitmap => {
                    let bs = imm_rrr::BitSet::from_iter_with_capacity(
                        num_nodes,
                        buf[start..].iter().map(|&v| v as usize),
                    );
                    heavy.push((job, bs));
                    buf.truncate(start);
                }
            }
        }
        per_worker_ops[worker].fetch_add(local_ops, Ordering::Relaxed);
        let mut slot = slots[worker].lock();
        let base = slot.arena.len();
        assert!(
            base + buf.len() <= u32::MAX as usize,
            "per-worker sampling arena exceeds the u32 offset space"
        );
        slot.arena.extend_from_slice(&buf);
        slot.lists.extend(entries.iter().map(|&(job, s, l)| (job, base as u32 + s, l)));
        slot.bitmaps.append(&mut heavy);
        slot.provenance.append(&mut records);
        drop(slot);
        markers.lock().push(marker);
    });

    // Splice the per-worker arenas into the global collection in set-index
    // order, so the output is canonical for every thread count and schedule.
    let mut outputs: Vec<SlotOutput> = slots.into_iter().map(|m| m.into_inner()).collect();
    const UNFILLED: u32 = u32::MAX;
    let mut directory: Vec<(u32, u32, u32)> = vec![(UNFILLED, 0, 0); count];
    let mut bitmap_of: Vec<Option<imm_rrr::BitSet>> = Vec::new();
    bitmap_of.resize_with(count, || None);
    let mut record_of: Vec<SetProvenance> = Vec::new();
    if trace {
        record_of = vec![SetProvenance::default(); count];
    }
    for (slot_idx, output) in outputs.iter_mut().enumerate() {
        for &(job, start, len) in &output.lists {
            directory[job] = (slot_idx as u32, start, len);
        }
        for (job, bs) in output.bitmaps.drain(..) {
            bitmap_of[job] = Some(bs);
        }
        if trace {
            for &(job, record) in &output.provenance {
                record_of[job] = record;
            }
        }
    }
    // The slot arenas hold exactly the list-bound members, so their total is
    // the arena reservation (bitmap sets live in the side table).
    let list_members: usize = outputs.iter().map(|o| o.arena.len()).sum();
    let mut sets = RrrCollection::with_arena_capacity(num_nodes, count, list_members);
    for (job, &(slot_idx, start, len)) in directory.iter().enumerate() {
        if let Some(bs) = bitmap_of[job].take() {
            sets.push(imm_rrr::RrrSet::Bitmap(bs));
        } else {
            assert!(slot_idx != UNFILLED, "every job index is produced exactly once");
            let members = &outputs[slot_idx as usize].arena[start as usize..(start + len) as usize];
            sets.push_sorted_slice(members, &config.policy);
        }
    }
    let provenance = trace.then_some(record_of);
    let work = WorkProfile {
        per_thread_ops: per_worker_ops.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        atomic_ops: atomic_ops.load(Ordering::Relaxed),
        search_probes: 0,
    };
    SamplingOutput { sets, work, provenance }
}

/// Derive the RNG stream of one RRR set from the base seed and the set's
/// global index (SplitMix64-style mixing).
pub fn rng_for_set(base_seed: u64, set_index: usize) -> SmallRng {
    let mut z = base_seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(set_index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imm_graph::generators;
    use imm_graph::WeightModel;

    fn pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap()
    }

    fn config(model: DiffusionModel, threads: usize) -> SamplingConfig<'static> {
        SamplingConfig {
            model,
            rng_seed: 42,
            policy: AdaptivePolicy::default(),
            schedule: Schedule::Dynamic { chunk: 8 },
            threads,
            fused_counter: None,
        }
    }

    #[test]
    fn visit_marker_epochs() {
        let mut m = VisitMarker::new(10);
        m.next_epoch();
        assert!(m.visit(3));
        assert!(!m.visit(3));
        assert!(m.visited(3));
        m.next_epoch();
        assert!(!m.visited(3));
        assert!(m.visit(3));
    }

    #[test]
    fn ic_rrr_set_contains_root_and_only_reverse_reachable_vertices() {
        // Path 0 -> 1 -> 2 -> 3 with probability 1: the RRR set of root v is
        // exactly {0, ..., v}.
        let g = CsrGraph::from_edge_list(&generators::path(4));
        let w = EdgeWeights::constant(&g, 1.0);
        let mut marker = VisitMarker::new(4);
        let mut rng = SmallRng::seed_from_u64(1);
        for root in 0..4u32 {
            let mut set = generate_rrr_set(
                &g,
                &w,
                DiffusionModel::IndependentCascade,
                root,
                &mut rng,
                &mut marker,
            );
            set.sort_unstable();
            let expected: Vec<u32> = (0..=root).collect();
            assert_eq!(set, expected, "root {root}");
        }
    }

    #[test]
    fn ic_zero_probability_gives_singleton_sets() {
        let g = CsrGraph::from_edge_list(&generators::complete(10));
        let w = EdgeWeights::constant(&g, 0.0);
        let mut marker = VisitMarker::new(10);
        let mut rng = SmallRng::seed_from_u64(2);
        let set =
            generate_rrr_set(&g, &w, DiffusionModel::IndependentCascade, 4, &mut rng, &mut marker);
        assert_eq!(set, vec![4]);
    }

    #[test]
    fn lt_walk_follows_weights() {
        // 0 -> 2 with weight 1.0 and 1 -> 2 with weight 0.0: from root 2 the
        // walk must always step to 0 and never to 1.
        let g = CsrGraph::from_edges(3, vec![(0, 2), (1, 2)]).unwrap();
        let w = EdgeWeights::from_vec(&g, vec![1.0, 0.0], WeightModel::LtNormalized).unwrap();
        let mut marker = VisitMarker::new(3);
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let set =
                generate_rrr_set(&g, &w, DiffusionModel::LinearThreshold, 2, &mut rng, &mut marker);
            assert!(set.contains(&0));
            assert!(!set.contains(&1));
        }
    }

    #[test]
    fn lt_walk_terminates_on_cycles() {
        // A directed cycle with full weights would loop forever without the
        // visited check.
        let g = CsrGraph::from_edge_list(&generators::cycle(5));
        let w = EdgeWeights::constant(&g, 1.0);
        let mut marker = VisitMarker::new(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let set =
            generate_rrr_set(&g, &w, DiffusionModel::LinearThreshold, 0, &mut rng, &mut marker);
        assert_eq!(set.len(), 5, "walk must visit each cycle vertex exactly once");
    }

    #[test]
    fn bulk_generation_produces_requested_count() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = CsrGraph::from_edge_list(&generators::social_network(300, 6, 0.2, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);
        let p = pool(2);
        let out =
            generate_rrr_sets(&g, &w, 200, 0, &config(DiffusionModel::IndependentCascade, 2), &p);
        assert_eq!(out.sets.len(), 200);
        assert!(out.work.total_ops() >= 200, "at least the roots are touched");
        assert_eq!(out.work.per_thread_ops.len(), 2);
    }

    #[test]
    fn bulk_generation_is_deterministic_and_ordered_across_threads_and_schedules() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = CsrGraph::from_edge_list(&generators::social_network(200, 6, 0.2, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);

        let collect = |threads: usize, schedule: Schedule| -> Vec<Vec<NodeId>> {
            let p = pool(threads);
            let mut cfg = config(DiffusionModel::IndependentCascade, threads);
            cfg.schedule = schedule;
            let out = generate_rrr_sets(&g, &w, 100, 0, &cfg, &p);
            out.sets.iter().map(|s| s.to_vec()).collect()
        };

        // The output is in global set-index order, so equality holds without
        // sorting — the canonical order the sketch index relies on.
        let a = collect(1, Schedule::Static);
        let b = collect(4, Schedule::Dynamic { chunk: 3 });
        let c = collect(2, Schedule::Static);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn output_order_matches_the_indexed_streams() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = CsrGraph::from_edge_list(&generators::social_network(150, 5, 0.2, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);
        let p = pool(3);
        let cfg = config(DiffusionModel::IndependentCascade, 3);
        let out = generate_rrr_sets(&g, &w, 40, 7, &cfg, &p);
        let mut marker = VisitMarker::new(g.num_nodes());
        for (i, set) in out.sets.iter().enumerate() {
            let (vertices, _) = generate_indexed_rrr_set(
                &g,
                &w,
                DiffusionModel::IndependentCascade,
                cfg.rng_seed,
                7 + i,
                &mut marker,
            );
            let mut sorted = vertices;
            sorted.sort_unstable();
            assert_eq!(set.to_vec(), sorted, "set {i} must come from stream {}", 7 + i);
        }
    }

    #[test]
    fn traced_generation_matches_untraced_and_records_probed_edges() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = CsrGraph::from_edge_list(&generators::social_network(180, 6, 0.25, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            let p = pool(2);
            let cfg = config(model, 2);
            let plain = generate_rrr_sets(&g, &w, 60, 0, &cfg, &p);
            let traced = generate_rrr_sets_traced(&g, &w, 60, 0, &cfg, &p);
            assert_eq!(plain.sets, traced.sets, "{model:?}: tracing must not change draws");
            assert!(plain.provenance.is_none());
            let provenance = traced.provenance.expect("traced run records provenance");
            assert_eq!(provenance.len(), 60);
            for (set, record) in traced.sets.iter().zip(&provenance) {
                assert!(set.contains(record.root), "the root is always a member");
                // Every member beyond the root was reached over a probed
                // in-edge, so a non-singleton set has a non-empty footprint.
                if set.len() > 1 {
                    assert!(!record.footprint.is_empty());
                }
            }
        }
    }

    #[test]
    fn footprint_covers_every_in_edge_of_an_ic_set() {
        // IC probes every in-edge of each visited vertex whose source was
        // unvisited at scan time; in particular, each member's first-scan
        // in-edges from non-members are always probed. Check the one-sided
        // guarantee on a concrete instance: any edge into a member from a
        // vertex outside the set must be in the footprint (it was probed and
        // rejected) or its source is a member (it may have been skipped).
        let mut rng = SmallRng::seed_from_u64(14);
        let g = CsrGraph::from_edge_list(&generators::social_network(120, 6, 0.25, &mut rng));
        let w = EdgeWeights::constant(&g, 0.4);
        let mut marker = VisitMarker::new(g.num_nodes());
        for idx in 0..30 {
            let (vertices, record) = generate_indexed_rrr_set(
                &g,
                &w,
                DiffusionModel::IndependentCascade,
                99,
                idx,
                &mut marker,
            );
            let members: std::collections::HashSet<NodeId> = vertices.iter().copied().collect();
            for &v in &vertices {
                for u in g.in_neighbors(v) {
                    if !members.contains(u) {
                        assert!(
                            record.footprint.may_contain(*u, v),
                            "probed edge {u} -> {v} missing from footprint of set {idx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_counter_matches_set_contents() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = CsrGraph::from_edge_list(&generators::social_network(150, 6, 0.2, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);
        let counter = GlobalCounter::new(g.num_nodes());
        let p = pool(2);
        let mut cfg = config(DiffusionModel::IndependentCascade, 2);
        cfg.fused_counter = Some(&counter);
        let out = generate_rrr_sets(&g, &w, 80, 0, &cfg, &p);

        // Recompute occurrence counts from the materialized sets.
        let mut expected = vec![0u64; g.num_nodes()];
        for set in out.sets.iter() {
            for v in set.iter() {
                expected[v as usize] += 1;
            }
        }
        assert_eq!(counter.snapshot(), expected);
        assert!(out.work.atomic_ops > 0);
    }

    #[test]
    fn start_index_changes_the_sampled_sets() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = CsrGraph::from_edge_list(&generators::social_network(150, 6, 0.2, &mut rng));
        let w = EdgeWeights::ic_weighted_cascade(&g);
        let p = pool(1);
        let cfg = config(DiffusionModel::IndependentCascade, 1);
        let a = generate_rrr_sets(&g, &w, 50, 0, &cfg, &p);
        let b = generate_rrr_sets(&g, &w, 50, 50, &cfg, &p);
        let a_sets: Vec<Vec<NodeId>> = a.sets.iter().map(|s| s.to_vec()).collect();
        let b_sets: Vec<Vec<NodeId>> = b.sets.iter().map(|s| s.to_vec()).collect();
        assert_ne!(a_sets, b_sets, "different global indices must give different streams");
    }

    #[test]
    fn zero_count_is_a_no_op() {
        let g = CsrGraph::from_edge_list(&generators::star(10));
        let w = EdgeWeights::constant(&g, 0.5);
        let p = pool(2);
        let out =
            generate_rrr_sets(&g, &w, 0, 0, &config(DiffusionModel::IndependentCascade, 2), &p);
        assert_eq!(out.sets.len(), 0);
        assert_eq!(out.work.total_ops(), 0);
    }

    #[test]
    fn dense_graph_under_ic_produces_giant_rrr_sets() {
        // The paper's SCC argument: on a strongly connected social graph with
        // reasonably high probabilities, RRR sets cover a large fraction.
        let mut rng = SmallRng::seed_from_u64(8);
        let g = CsrGraph::from_edge_list(&generators::social_network(400, 10, 0.3, &mut rng));
        let w = EdgeWeights::constant(&g, 0.3);
        let p = pool(2);
        let out =
            generate_rrr_sets(&g, &w, 50, 0, &config(DiffusionModel::IndependentCascade, 2), &p);
        let stats = out.sets.coverage_stats();
        assert!(stats.max_coverage > 0.5, "max coverage {}", stats.max_coverage);
    }
}

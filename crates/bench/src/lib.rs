//! # imm-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section.
//!
//! * [`datasets`] — the registry of synthetic analogues standing in for the
//!   eight SNAP datasets (each entry records the paper-reported reference
//!   numbers so the output can be compared side by side).
//! * [`scaling`] — the strong-scaling driver and the work/contention model
//!   used to derive scaling *shapes* on this single-core reproduction host
//!   (see DESIGN.md §4 for the substitution rationale).
//! * [`runner`] — shared helpers for running IMM configurations and
//!   collecting results.
//! * [`output`] — plain-text tables, CSV files and the JSON run logs the
//!   paper's artifact produces.
//! * [`obs`] — the versioned JSON shape for `imm-obs` registry exports,
//!   shared by the CLI's `stats --metrics` and the perf suite's
//!   `BENCH_*.json` embed.
//!
//! Each table/figure has a dedicated binary under `src/bin/`; see DESIGN.md
//! §6 for the experiment-to-binary index.

pub mod config;
pub mod datasets;
pub mod obs;
pub mod output;
pub mod runner;
pub mod scaling;

pub use datasets::{registry, Dataset, DatasetSpec, Scale};
pub use runner::{run_configuration, BenchMeasurement};
pub use scaling::{modeled_time, scaling_curve, ScalingPoint};

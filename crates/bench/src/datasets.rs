//! The dataset registry: synthetic analogues of the paper's SNAP graphs.
//!
//! The real datasets (com-Amazon … Twitter7) cannot be downloaded in this
//! environment, so each entry generates a synthetic graph reproducing the two
//! structural properties the paper's analysis attributes its results to —
//! degree skew and the presence (or absence) of a giant SCC that makes RRR
//! sets dense. Sizes are scaled down so the full suite completes on one core;
//! the scale factor and the paper's reference numbers are recorded on every
//! entry so EXPERIMENTS.md can show paper-vs-measured side by side.

use imm_graph::{generators, CsrGraph, EdgeList, EdgeWeights, WeightModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Reference values reported by the paper for the original dataset.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaperReference {
    /// Nodes of the original SNAP graph (Table I).
    pub nodes: u64,
    /// Edges of the original SNAP graph (Table I).
    pub edges: u64,
    /// Average RRR-set coverage under IC, ε = 0.5 (Table I), as a fraction.
    pub avg_rrr_coverage: f64,
    /// Maximum RRR-set coverage (Table I), as a fraction.
    pub max_rrr_coverage: f64,
    /// Best Ripples runtime under IC in seconds (Table III); `None` = OOM.
    pub ripples_ic_seconds: Option<f64>,
    /// Best EfficientIMM runtime under IC in seconds (Table III).
    pub efficientimm_ic_seconds: f64,
    /// Best Ripples runtime under LT in seconds (Table III).
    pub ripples_lt_seconds: Option<f64>,
    /// Best EfficientIMM runtime under LT in seconds (Table III).
    pub efficientimm_lt_seconds: f64,
    /// Ripples L1+L2 misses in `Find_Most_Influential_Set` (Table IV), when
    /// reported.
    pub ripples_cache_misses: Option<u64>,
    /// EfficientIMM L1+L2 misses (Table IV), when reported.
    pub efficientimm_cache_misses: Option<u64>,
}

/// How the synthetic analogue is generated.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum GeneratorKind {
    /// Community-structured graph (stochastic block model + backbone):
    /// product/co-authorship networks such as com-Amazon and com-DBLP.
    Community {
        /// Number of vertices.
        nodes: usize,
        /// Number of equally sized communities.
        blocks: usize,
    },
    /// Preferential-attachment social network with extra long-range edges:
    /// com-YouTube, soc-Pokec, com-LJ, Twitter7.
    Social {
        /// Number of vertices.
        nodes: usize,
        /// Average degree of the backbone.
        avg_degree: usize,
        /// Extra random directed edges as a fraction of the backbone.
        extra: f64,
    },
    /// R-MAT graph: the web-crawl analogue (web-Google).
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Directed edges per vertex.
        edge_factor: usize,
    },
    /// Grid with shortcuts: the low-coverage as-Skitter analogue.
    Road {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

/// One entry of the registry.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetSpec {
    /// Short name used in output tables (matches the paper's dataset names).
    pub name: &'static str,
    /// The SNAP dataset this entry stands in for.
    pub paper_name: &'static str,
    /// Generator configuration.
    pub generator: GeneratorKind,
    /// Seed for the generator RNG (fixed so every run sees the same graph).
    pub seed: u64,
    /// The paper's reference numbers for the original dataset.
    pub reference: PaperReference,
}

/// A materialized dataset: the graph plus IC and LT edge weights.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The registry entry this graph was generated from.
    pub spec: DatasetSpec,
    /// The graph.
    pub graph: CsrGraph,
    /// Independent-cascade probabilities (uniform `[0,1]`, as in the paper).
    pub ic_weights: EdgeWeights,
    /// Linear-threshold weights (normalized in-weights, as in the paper).
    pub lt_weights: EdgeWeights,
}

impl DatasetSpec {
    /// Generate the synthetic graph for this entry.
    pub fn build_graph(&self) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let el: EdgeList = match self.generator {
            GeneratorKind::Community { nodes, blocks } => {
                let block_size = (nodes / blocks).max(2);
                let sizes = vec![block_size; blocks];
                let mut el = generators::stochastic_block_model(&sizes, 0.08, 0.0008, &mut rng);
                // A sparse backbone keeps the whole graph weakly connected
                // and creates the giant SCC the com-* graphs have.
                let backbone = generators::social_network(block_size * blocks, 4, 0.1, &mut rng);
                for (s, d) in backbone.iter() {
                    el.push(s, d);
                }
                el.dedup();
                el
            }
            GeneratorKind::Social { nodes, avg_degree, extra } => {
                generators::social_network(nodes, avg_degree, extra, &mut rng)
            }
            GeneratorKind::Rmat { scale, edge_factor } => {
                let mut el = generators::rmat(
                    scale,
                    edge_factor,
                    generators::RmatParams::default(),
                    &mut rng,
                );
                el.symmetrize();
                el
            }
            GeneratorKind::Road { rows, cols } => {
                generators::directed_road_network(rows, cols, 0.03, &mut rng)
            }
        };
        CsrGraph::from_edge_list(&el)
    }

    /// Generate the graph and both weight sets.
    pub fn build(&self) -> Dataset {
        let graph = self.build_graph();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A);
        let ic_weights = EdgeWeights::generate(&graph, WeightModel::IcUniform, 0.0, &mut rng);
        let lt_weights = EdgeWeights::generate(&graph, WeightModel::LtNormalized, 0.0, &mut rng);
        Dataset { spec: *self, graph, ic_weights, lt_weights }
    }
}

/// The eight SNAP analogues, in the order the paper's Table I lists them.
///
/// `scale` selects the analogue size: benchmarks default to the small scale
/// so the whole suite finishes quickly on one core; `Scale::Full` roughly
/// quadruples the vertex counts for longer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick-run sizes (1–4 k vertices).
    Small,
    /// Larger sizes (4–16 k vertices) for overnight-style runs.
    Full,
}

/// Build the dataset registry at the requested scale.
pub fn registry(scale: Scale) -> Vec<DatasetSpec> {
    let f = match scale {
        Scale::Small => 1usize,
        Scale::Full => 4usize,
    };
    vec![
        DatasetSpec {
            name: "com-Amazon",
            paper_name: "com-Amazon",
            generator: GeneratorKind::Community { nodes: 1_600 * f, blocks: 40 },
            seed: 101,
            reference: PaperReference {
                nodes: 334_863,
                edges: 925_872,
                avg_rrr_coverage: 0.613,
                max_rrr_coverage: 0.796,
                ripples_ic_seconds: Some(7.93),
                efficientimm_ic_seconds: 0.97,
                ripples_lt_seconds: Some(0.93),
                efficientimm_lt_seconds: 0.16,
                ripples_cache_misses: Some(283_963_507),
                efficientimm_cache_misses: Some(10_947_324),
            },
        },
        DatasetSpec {
            name: "com-DBLP",
            paper_name: "com-DBLP",
            generator: GeneratorKind::Community { nodes: 1_500 * f, blocks: 30 },
            seed: 102,
            reference: PaperReference {
                nodes: 317_080,
                edges: 1_049_866,
                avg_rrr_coverage: 0.514,
                max_rrr_coverage: 0.789,
                ripples_ic_seconds: Some(7.10),
                efficientimm_ic_seconds: 0.94,
                ripples_lt_seconds: Some(4.2),
                efficientimm_lt_seconds: 0.85,
                ripples_cache_misses: None,
                efficientimm_cache_misses: None,
            },
        },
        DatasetSpec {
            name: "com-YouTube",
            paper_name: "com-YouTube",
            generator: GeneratorKind::Social { nodes: 2_400 * f, avg_degree: 5, extra: 0.25 },
            seed: 103,
            reference: PaperReference {
                nodes: 1_134_890,
                edges: 2_987_624,
                avg_rrr_coverage: 0.327,
                max_rrr_coverage: 0.599,
                ripples_ic_seconds: Some(14.07),
                efficientimm_ic_seconds: 3.0,
                ripples_lt_seconds: Some(1.23),
                efficientimm_lt_seconds: 0.14,
                ripples_cache_misses: Some(135_802_513),
                efficientimm_cache_misses: Some(379_979),
            },
        },
        DatasetSpec {
            name: "as-Skitter",
            paper_name: "as-Skitter",
            generator: GeneratorKind::Road { rows: 45, cols: 40 },
            seed: 104,
            reference: PaperReference {
                nodes: 1_696_415,
                edges: 11_095_298,
                avg_rrr_coverage: 0.016,
                max_rrr_coverage: 0.054,
                ripples_ic_seconds: Some(2.3),
                efficientimm_ic_seconds: 0.45,
                ripples_lt_seconds: Some(38.96),
                efficientimm_lt_seconds: 10.59,
                ripples_cache_misses: None,
                efficientimm_cache_misses: None,
            },
        },
        DatasetSpec {
            name: "web-Google",
            paper_name: "web-Google",
            generator: GeneratorKind::Rmat { scale: 11, edge_factor: 6 },
            seed: 105,
            reference: PaperReference {
                nodes: 875_713,
                edges: 5_105_039,
                avg_rrr_coverage: 0.174,
                max_rrr_coverage: 0.548,
                ripples_ic_seconds: Some(36.04),
                efficientimm_ic_seconds: 4.82,
                ripples_lt_seconds: Some(21.93),
                efficientimm_lt_seconds: 3.7,
                ripples_cache_misses: Some(406_351_077),
                efficientimm_cache_misses: Some(18_139_797),
            },
        },
        DatasetSpec {
            name: "soc-Pokec",
            paper_name: "soc-Pokec",
            generator: GeneratorKind::Social { nodes: 2_000 * f, avg_degree: 12, extra: 0.3 },
            seed: 106,
            reference: PaperReference {
                nodes: 1_632_803,
                edges: 30_622_564,
                avg_rrr_coverage: 0.601,
                max_rrr_coverage: 0.785,
                ripples_ic_seconds: Some(59.90),
                efficientimm_ic_seconds: 36.97,
                ripples_lt_seconds: Some(40.57),
                efficientimm_lt_seconds: 10.7,
                ripples_cache_misses: Some(48_114_540),
                efficientimm_cache_misses: Some(516_602),
            },
        },
        DatasetSpec {
            name: "com-LJ",
            paper_name: "com-LJ (LiveJournal)",
            generator: GeneratorKind::Social { nodes: 3_000 * f, avg_degree: 10, extra: 0.3 },
            seed: 107,
            reference: PaperReference {
                nodes: 3_997_962,
                edges: 34_681_189,
                avg_rrr_coverage: 0.680,
                max_rrr_coverage: 0.841,
                ripples_ic_seconds: Some(167.4),
                efficientimm_ic_seconds: 134.0,
                ripples_lt_seconds: Some(1.58),
                efficientimm_lt_seconds: 0.13,
                ripples_cache_misses: Some(69_299_959),
                efficientimm_cache_misses: Some(687_345),
            },
        },
        DatasetSpec {
            name: "twitter7",
            paper_name: "Twitter7",
            generator: GeneratorKind::Social { nodes: 4_000 * f, avg_degree: 16, extra: 0.4 },
            seed: 108,
            reference: PaperReference {
                nodes: 41_652_230,
                edges: 1_468_365_182,
                avg_rrr_coverage: 0.598,
                max_rrr_coverage: 0.880,
                ripples_ic_seconds: None, // OOM in the paper
                efficientimm_ic_seconds: 1_645.58,
                ripples_lt_seconds: Some(2_354.7),
                efficientimm_lt_seconds: 1_734.9,
                ripples_cache_misses: None,
                efficientimm_cache_misses: None,
            },
        },
    ]
}

/// Look up one registry entry by (case-insensitive) name.
pub fn find(scale: Scale, name: &str) -> Option<DatasetSpec> {
    registry(scale).into_iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

/// The five datasets the paper's Table IV (cache misses) reports.
pub fn cache_miss_subset(scale: Scale) -> Vec<DatasetSpec> {
    ["com-Amazon", "web-Google", "soc-Pokec", "com-YouTube", "com-LJ"]
        .iter()
        .filter_map(|n| find(scale, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imm_graph::properties;

    #[test]
    fn registry_has_all_eight_paper_datasets() {
        let r = registry(Scale::Small);
        assert_eq!(r.len(), 8);
        let names: Vec<_> = r.iter().map(|d| d.name).collect();
        for expected in [
            "com-Amazon",
            "com-DBLP",
            "com-YouTube",
            "as-Skitter",
            "web-Google",
            "soc-Pokec",
            "com-LJ",
            "twitter7",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find(Scale::Small, "COM-amazon").is_some());
        assert!(find(Scale::Small, "no-such-graph").is_none());
    }

    #[test]
    fn cache_miss_subset_has_five_entries() {
        assert_eq!(cache_miss_subset(Scale::Small).len(), 5);
    }

    #[test]
    fn graphs_build_and_are_deterministic() {
        let spec = find(Scale::Small, "com-YouTube").unwrap();
        let a = spec.build_graph();
        let b = spec.build_graph();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.num_nodes() >= 1_000);
    }

    #[test]
    fn full_scale_is_larger_than_small() {
        let small = find(Scale::Small, "soc-Pokec").unwrap().build_graph();
        let full = find(Scale::Full, "soc-Pokec").unwrap().build_graph();
        assert!(full.num_nodes() > 2 * small.num_nodes());
    }

    #[test]
    fn social_analogues_have_giant_sccs_and_road_analogue_does_not_dominate() {
        let social = find(Scale::Small, "soc-Pokec").unwrap().build_graph();
        let scc = properties::strongly_connected_components(&social);
        assert!(scc.largest_fraction() > 0.5, "social analogue must have a giant SCC");

        let road = find(Scale::Small, "as-Skitter").unwrap().build_graph();
        let stats = properties::out_degree_stats(&road);
        assert!(stats.max <= 12, "road analogue must have bounded degree");
    }

    #[test]
    fn dataset_build_produces_valid_weights() {
        let d = find(Scale::Small, "com-Amazon").unwrap().build();
        assert_eq!(d.ic_weights.len(), d.graph.num_edges());
        assert_eq!(d.lt_weights.len(), d.graph.num_edges());
        // LT in-weights must be <= 1.
        for v in 0..d.graph.num_nodes() as u32 {
            assert!(d.lt_weights.in_weight_sum(&d.graph, v) <= 1.0 + 1e-4);
        }
    }
}

//! Strong-scaling measurements and the work/contention model.
//!
//! The paper's scaling figures (1, 6, 7) and runtime-breakdown figure (2) are
//! measured on a 128-core, 8-NUMA-node machine. This reproduction host has a
//! single physical core, so wall-clock time cannot show parallel speedup.
//! Instead, every kernel records how much work each worker thread performed
//! (`WorkProfile`), and the scaling curves are derived from a simple
//! parallel-cost model:
//!
//! ```text
//! T(p) = max_thread_ops(p) · (1 + atomic_contention(p)) + reduction_overhead(p)
//! ```
//!
//! * `max_thread_ops` is the measured span — the busiest thread's operation
//!   count. For the Ripples selection kernel this stays flat as `p` grows
//!   (every thread scans every RRR set), which is exactly the scalability
//!   collapse the paper diagnoses; for EfficientIMM it shrinks like `1/p`.
//! * `atomic_contention` charges a small, linearly growing penalty for the
//!   shared-counter atomics (EfficientIMM's trade-off the paper discusses).
//! * `reduction_overhead` charges the per-seed two-level reduction and
//!   fork-join costs that eventually bound speedup on small inputs.
//!
//! Wall-clock is still reported next to the modelled numbers so the two can
//! be compared on hosts that do have many cores.

use crate::datasets::Dataset;
use crate::runner::{run_configuration, BenchMeasurement};
use efficient_imm::{Algorithm, WorkProfile};
use imm_diffusion::DiffusionModel;

/// Relative cost of an atomic read-modify-write vs. a plain access when `p`
/// threads share the counter (calibrated to the few-percent overhead the
/// paper's fine-grained `lock incq` updates exhibit).
fn atomic_penalty(threads: usize) -> f64 {
    0.02 * (threads.saturating_sub(1)) as f64
}

/// Fixed per-thread fork-join/reduction overhead in modelled operations.
const PER_THREAD_OVERHEAD: f64 = 5_000.0;

/// Modelled parallel execution time (arbitrary "operation" units) of one run,
/// combining the sampling and selection work profiles.
pub fn modeled_time(sampling: &WorkProfile, selection: &WorkProfile, threads: usize) -> f64 {
    let threads = threads.max(1);
    let span = |w: &WorkProfile| -> f64 {
        let max_ops = w.max_thread_ops() as f64;
        let total = w.total_ops() as f64;
        let atomic_fraction = if total == 0.0 { 0.0 } else { w.atomic_ops as f64 / total };
        max_ops * (1.0 + atomic_fraction * atomic_penalty(threads))
    };
    span(sampling) + span(selection) + PER_THREAD_OVERHEAD * threads as f64
}

/// One point of a strong-scaling curve.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScalingPoint {
    /// Worker threads.
    pub threads: usize,
    /// Full measurement at this thread count.
    pub measurement: BenchMeasurement,
    /// Modelled speedup relative to the 1-thread run of the same engine.
    pub modeled_self_speedup: f64,
    /// Measured wall-clock speedup relative to the 1-thread run (expected to
    /// hover around 1.0 on a single-core host; reported for completeness).
    pub wall_self_speedup: f64,
}

/// Run a strong-scaling sweep of one engine over `thread_counts`.
pub fn scaling_curve(
    dataset: &Dataset,
    model: DiffusionModel,
    algorithm: Algorithm,
    thread_counts: &[usize],
    k: usize,
    epsilon: f64,
) -> Vec<ScalingPoint> {
    let mut points = Vec::with_capacity(thread_counts.len());
    let mut base_modeled = None;
    let mut base_wall = None;
    for &threads in thread_counts {
        let m = run_configuration(dataset, model, algorithm, threads, k, epsilon);
        let base_m = *base_modeled.get_or_insert(m.modeled_time);
        let base_w = *base_wall.get_or_insert(m.wall_seconds);
        points.push(ScalingPoint {
            threads,
            modeled_self_speedup: if m.modeled_time > 0.0 { base_m / m.modeled_time } else { 0.0 },
            wall_self_speedup: if m.wall_seconds > 0.0 { base_w / m.wall_seconds } else { 0.0 },
            measurement: m,
        });
    }
    points
}

/// Normalize a curve against a reference modelled time (the paper's Figures 6
/// and 7 normalize EfficientIMM against 1-thread and 8-thread Ripples).
pub fn normalized_speedups(
    curve: &[ScalingPoint],
    reference_modeled_time: f64,
) -> Vec<(usize, f64)> {
    curve
        .iter()
        .map(|p| {
            let s = if p.measurement.modeled_time > 0.0 {
                reference_modeled_time / p.measurement.modeled_time
            } else {
                0.0
            };
            (p.threads, s)
        })
        .collect()
}

/// Shared driver for the paper's Figures 6 (LT) and 7 (IC): strong scaling of
/// EfficientIMM normalized to the 1-thread and 8-thread Ripples runs, over
/// every dataset in the registry. Prints the table and writes
/// `results/<stem>.csv`.
pub fn scaling_figure(model: DiffusionModel, stem: &str) {
    use crate::output::{fmt_ratio, results_dir, TextTable};

    let scale = crate::config::bench_scale();
    let k = crate::config::bench_k();
    let eps = crate::config::bench_epsilon();
    let thread_counts = crate::config::bench_threads();

    let mut table = TextTable::new(&[
        "Dataset",
        "Threads",
        "EfficientIMM vs 1-thread Ripples",
        "EfficientIMM vs 8-thread Ripples",
        "Ripples self-speedup",
        "EfficientIMM self-speedup",
    ]);

    for spec in crate::datasets::registry(scale) {
        let dataset = spec.build();
        let ripples_curve =
            scaling_curve(&dataset, model, Algorithm::Ripples, &thread_counts, k, eps);
        let efficient_curve =
            scaling_curve(&dataset, model, Algorithm::Efficient, &thread_counts, k, eps);

        let ripples_1t = ripples_curve.first().map(|p| p.measurement.modeled_time).unwrap_or(1.0);
        // "8-thread Ripples" reference: the measured point closest to 8
        // threads (the sweep may not contain exactly 8).
        let ripples_8t = ripples_curve
            .iter()
            .min_by_key(|p| p.threads.abs_diff(8))
            .map(|p| p.measurement.modeled_time)
            .unwrap_or(ripples_1t);

        let vs_1t = normalized_speedups(&efficient_curve, ripples_1t);
        let vs_8t = normalized_speedups(&efficient_curve, ripples_8t);

        for (i, point) in efficient_curve.iter().enumerate() {
            table.add_row(vec![
                spec.name.to_string(),
                point.threads.to_string(),
                fmt_ratio(vs_1t[i].1),
                fmt_ratio(vs_8t[i].1),
                fmt_ratio(ripples_curve[i].modeled_self_speedup),
                fmt_ratio(point.modeled_self_speedup),
            ]);
        }
        eprintln!("[{stem}] {} done", spec.name);
    }

    println!(
        "Figure ({stem}): strong scaling normalized to 1- and 8-thread Ripples; {model} model; k = {k}, eps = {eps}"
    );
    println!("{}", table.render());
    let csv = results_dir().join(format!("{stem}.csv"));
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{find, Scale};

    fn profile(per_thread: Vec<u64>, atomic: u64) -> WorkProfile {
        WorkProfile { per_thread_ops: per_thread, atomic_ops: atomic, search_probes: 0 }
    }

    #[test]
    fn modeled_time_rewards_balanced_shrinking_work() {
        // Perfect 1/p scaling: span halves when threads double.
        let t1 = modeled_time(&profile(vec![1_000_000], 0), &profile(vec![1_000_000], 0), 1);
        let t4 = modeled_time(&profile(vec![250_000; 4], 0), &profile(vec![250_000; 4], 0), 4);
        assert!(t1 / t4 > 3.0, "expected near-4x modelled speedup, got {}", t1 / t4);
    }

    #[test]
    fn modeled_time_shows_no_speedup_for_replicated_work() {
        // The Ripples pathology: every thread does the full scan, so the span
        // does not shrink.
        let t1 = modeled_time(&profile(vec![0], 0), &profile(vec![1_000_000], 0), 1);
        let t8 = modeled_time(&profile(vec![0; 8], 0), &profile(vec![1_000_000; 8], 0), 8);
        assert!(t8 >= t1, "replicated work must not speed up");
    }

    #[test]
    fn atomic_contention_adds_a_mild_penalty() {
        let no_atomics = modeled_time(&profile(vec![0; 8], 0), &profile(vec![100_000; 8], 0), 8);
        let all_atomics =
            modeled_time(&profile(vec![0; 8], 0), &profile(vec![100_000; 8], 800_000), 8);
        assert!(all_atomics > no_atomics);
        assert!(all_atomics < no_atomics * 1.5, "penalty must stay mild");
    }

    #[test]
    fn scaling_curve_efficient_beats_ripples_in_modeled_time() {
        let dataset = find(Scale::Small, "as-Skitter").unwrap().build();
        let threads = [1usize, 4];
        let eff = scaling_curve(
            &dataset,
            DiffusionModel::IndependentCascade,
            Algorithm::Efficient,
            &threads,
            5,
            0.5,
        );
        let rip = scaling_curve(
            &dataset,
            DiffusionModel::IndependentCascade,
            Algorithm::Ripples,
            &threads,
            5,
            0.5,
        );
        assert_eq!(eff.len(), 2);
        // At 4 threads the EfficientIMM modelled speedup must exceed the
        // Ripples modelled speedup (the baseline replicates selection work).
        assert!(
            eff[1].modeled_self_speedup > rip[1].modeled_self_speedup,
            "efficient {} vs ripples {}",
            eff[1].modeled_self_speedup,
            rip[1].modeled_self_speedup
        );
    }

    #[test]
    fn normalized_speedups_use_the_reference() {
        let dataset = find(Scale::Small, "as-Skitter").unwrap().build();
        let curve = scaling_curve(
            &dataset,
            DiffusionModel::IndependentCascade,
            Algorithm::Efficient,
            &[1, 2],
            4,
            0.5,
        );
        let norm = normalized_speedups(&curve, curve[0].measurement.modeled_time * 2.0);
        assert_eq!(norm.len(), 2);
        assert!((norm[0].1 - 2.0).abs() < 1e-9);
    }
}

//! Shared execution helpers: run one (dataset, model, algorithm, threads)
//! configuration and collect everything the tables need.

use crate::datasets::Dataset;
use efficient_imm::{run_imm, Algorithm, ExecutionConfig, ImmParams, ImmResult};
use imm_diffusion::DiffusionModel;
use imm_graph::EdgeWeights;
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchMeasurement {
    /// Dataset name.
    pub dataset: String,
    /// Diffusion model (short name, `"ic"`/`"lt"`).
    pub model: String,
    /// Engine (short name, `"ripples"`/`"efficientimm"`).
    pub algorithm: String,
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
    /// Wall-clock seconds of the sampling kernel.
    pub sampling_seconds: f64,
    /// Wall-clock seconds of the selection kernel.
    pub selection_seconds: f64,
    /// Modelled parallel time (work/contention model, arbitrary units) —
    /// what the scaling figures are derived from on this one-core host.
    pub modeled_time: f64,
    /// θ: number of RRR sets the guarantee was established with.
    pub theta: usize,
    /// Peak RRR-set storage in bytes.
    pub rrr_memory_bytes: usize,
    /// Estimated influence of the returned seed set.
    pub estimated_influence: f64,
    /// The selected seeds.
    pub seeds: Vec<u32>,
}

/// Pick the weight set matching `model` from a dataset.
pub fn weights_for(dataset: &Dataset, model: DiffusionModel) -> &EdgeWeights {
    match model {
        DiffusionModel::IndependentCascade => &dataset.ic_weights,
        DiffusionModel::LinearThreshold => &dataset.lt_weights,
    }
}

/// Run one configuration and collect a [`BenchMeasurement`].
pub fn run_configuration(
    dataset: &Dataset,
    model: DiffusionModel,
    algorithm: Algorithm,
    threads: usize,
    k: usize,
    epsilon: f64,
) -> BenchMeasurement {
    let params = ImmParams::new(k, epsilon, model).with_seed(0xB5EED ^ dataset.spec.seed);
    let exec = ExecutionConfig::new(algorithm, threads);
    let weights = weights_for(dataset, model);
    let start = Instant::now();
    let result = run_imm(&dataset.graph, weights, &params, &exec)
        .expect("benchmark parameters are valid for every registry dataset");
    let wall = start.elapsed().as_secs_f64();
    measurement_from(dataset, model, algorithm, threads, wall, &result)
}

/// Convert an [`ImmResult`] into the flat record the tables consume.
pub fn measurement_from(
    dataset: &Dataset,
    model: DiffusionModel,
    algorithm: Algorithm,
    threads: usize,
    wall_seconds: f64,
    result: &ImmResult,
) -> BenchMeasurement {
    BenchMeasurement {
        dataset: dataset.spec.name.to_string(),
        model: model.short_name().to_string(),
        algorithm: algorithm.short_name().to_string(),
        threads,
        wall_seconds,
        sampling_seconds: result.breakdown.timings.generate_rrrsets.as_secs_f64(),
        selection_seconds: result.breakdown.timings.find_most_influential.as_secs_f64(),
        modeled_time: crate::scaling::modeled_time(
            &result.breakdown.sampling_work,
            &result.breakdown.selection_work,
            threads,
        ),
        theta: result.theta,
        rrr_memory_bytes: result.breakdown.rrr_memory_bytes,
        estimated_influence: result.estimated_influence,
        seeds: result.seeds.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{find, Scale};

    #[test]
    fn run_configuration_produces_consistent_measurement() {
        let dataset = find(Scale::Small, "as-Skitter").unwrap().build();
        let m = run_configuration(
            &dataset,
            DiffusionModel::IndependentCascade,
            Algorithm::Efficient,
            2,
            5,
            0.5,
        );
        assert_eq!(m.dataset, "as-Skitter");
        assert_eq!(m.model, "ic");
        assert_eq!(m.algorithm, "efficientimm");
        assert_eq!(m.seeds.len(), 5);
        assert!(m.wall_seconds > 0.0);
        assert!(m.theta > 0);
        assert!(m.modeled_time > 0.0);
        assert!(m.wall_seconds >= m.sampling_seconds);
    }

    #[test]
    fn weights_for_selects_the_right_model() {
        let dataset = find(Scale::Small, "as-Skitter").unwrap().build();
        let ic = weights_for(&dataset, DiffusionModel::IndependentCascade);
        let lt = weights_for(&dataset, DiffusionModel::LinearThreshold);
        assert_eq!(ic.len(), dataset.graph.num_edges());
        assert_eq!(lt.len(), dataset.graph.num_edges());
        assert_ne!(ic.as_slice(), lt.as_slice());
    }
}

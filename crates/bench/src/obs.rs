//! The one JSON shape for `imm-obs` registry exports.
//!
//! Both consumers — the CLI's `stats --metrics` panel and the perf
//! suite's `BENCH_*.json` embed — serialize the registry through
//! [`registry_json`], so the two can never drift. The shape is
//! versioned independently of the bench schema:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "recording_enabled": true,
//!   "metrics": [
//!     { "name": "...", "kind": "counter",   "unit": "count", "description": "...", "value": 7 },
//!     { "name": "...", "kind": "gauge",     "unit": "ratio", "description": "...", "value": 1.25 },
//!     { "name": "...", "kind": "histogram", "unit": "nanoseconds", "description": "...",
//!       "value": { "count": 9, "p50": 95, "p90": 127, "p99": 127, "max": 127,
//!                  "buckets": [[95, 5], [127, 4]] } },
//!     { "name": "...", "kind": "rate",      "unit": "events_per_second", "description": "...",
//!       "value": { "count": 9, "per_sec": 1250.0 } }
//!   ]
//! }
//! ```
//!
//! Metrics are sorted by name; histogram `buckets` are the non-empty
//! `(inclusive upper bound, count)` pairs, ascending. Bumping
//! [`METRICS_SCHEMA_VERSION`] is a breaking change to every dashboard
//! keyed on this shape and must be deliberate.

use imm_obs::{MetricValue, Sample};
use serde_json::{json, Value};

/// Version of the metrics JSON shape (independent of the bench schema).
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Register every subsystem's metrics with the global registry, whether
/// or not the calling process happened to construct the engines that
/// would register them organically. Exporters call this first so a
/// snapshot always lists the full workspace catalog (unused metrics
/// read zero).
pub fn register_workspace_metrics() {
    imm_exec::metrics::register();
    efficient_imm::metrics::register();
    imm_service::metrics::register();
    imm_shard::metrics::register();
    imm_serve::metrics::register();
    imm_store::metrics::register();
    imm_numa::metrics::register();
}

/// One sample in the documented shape.
fn sample_json(s: &Sample) -> Value {
    let value = match &s.value {
        MetricValue::Counter(v) => json!(v),
        MetricValue::Gauge(v) => json!(v),
        MetricValue::Histogram(h) => json!({
            "count": h.count,
            "p50": h.p50,
            "p90": h.p90,
            "p99": h.p99,
            "max": h.max,
            "buckets": h.buckets.iter().map(|&(ub, c)| json!([ub, c])).collect::<Vec<_>>(),
        }),
        MetricValue::Rate(r) => json!({ "count": r.count, "per_sec": r.per_sec }),
    };
    json!({
        "name": s.name,
        "kind": s.kind.as_str(),
        "unit": s.unit.as_str(),
        "description": s.description,
        "value": value,
    })
}

/// Serialize a sample list in the documented, versioned shape.
pub fn samples_json(samples: &[Sample]) -> Value {
    json!({
        "schema_version": METRICS_SCHEMA_VERSION,
        "recording_enabled": imm_obs::recording_enabled(),
        "metrics": samples.iter().map(sample_json).collect::<Vec<_>>(),
    })
}

/// Snapshot the full registry (after [`register_workspace_metrics`]) in
/// the documented shape.
pub fn registry_json() -> Value {
    register_workspace_metrics();
    samples_json(&imm_obs::snapshot())
}

/// The markdown metric catalog (name, kind, unit, description), sorted
/// by name — the exact text of the README's "Observability" section,
/// emitted by `stats --metrics --describe` so docs cannot drift.
pub fn catalog_markdown() -> String {
    register_workspace_metrics();
    let mut out = String::from("| Metric | Kind | Unit | Description |\n|---|---|---|---|\n");
    for s in imm_obs::snapshot() {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            s.name,
            s.kind.as_str(),
            s.unit.as_str(),
            s.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_json_has_the_documented_shape() {
        let v = registry_json();
        assert_eq!(v["schema_version"], json!(METRICS_SCHEMA_VERSION));
        let metrics = v["metrics"].as_array().expect("metrics array");
        assert!(!metrics.is_empty());
        for m in metrics {
            for key in ["name", "kind", "unit", "description", "value"] {
                assert!(!m[key].is_null(), "sample missing {key}: {m:?}");
            }
        }
        // Sorted by name.
        let names: Vec<&str> = metrics.iter().map(|m| m["name"].as_str().unwrap()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn catalog_lists_every_registered_metric() {
        let catalog = catalog_markdown();
        for s in imm_obs::snapshot() {
            assert!(catalog.contains(&format!("| `{}` |", s.name)), "{} missing", s.name);
        }
    }
}

//! Table/CSV/JSON output helpers shared by the experiment binaries.
//!
//! The paper's artifact writes JSON run logs into `strong-scaling-logs-*`
//! directories and summarizes them into `speedup_ic.csv` / `speedup_lt.csv`;
//! the binaries here mirror that interface (plus a plain-text table printed
//! to stdout so the result is readable without post-processing).

use crate::runner::BenchMeasurement;
use std::io::Write;
use std::path::Path;

/// A plain-text table with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (must have the same number of cells as the header).
    ///
    /// # Panics
    /// Panics if the cell count does not match the header.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Format seconds with three significant decimals.
pub fn fmt_seconds(s: f64) -> String {
    format!("{s:.3}")
}

/// Format a speedup/ratio with two decimals and an `x` suffix.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Format a fraction as a percentage with one decimal.
pub fn fmt_percent(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Write a batch of measurements as a JSON log (the artifact's per-run log
/// format), creating parent directories.
pub fn write_json_log(
    path: impl AsRef<Path>,
    measurements: &[BenchMeasurement],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(measurements).expect("measurements are serializable");
    std::fs::write(path, json)
}

/// Directory the experiment binaries drop their CSV/JSON outputs into
/// (`results/` next to the workspace root, overridable with
/// `IMM_RESULTS_DIR`).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("IMM_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(&["Graph", "Speedup"]);
        t.add_row(vec!["com-Amazon".into(), "5.9x".into()]);
        t.add_row(vec!["lj".into(), "12.10x".into()]);
        let s = t.render();
        assert!(s.contains("Graph"));
        assert!(s.contains("com-Amazon"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have the same width as or less than the header line.
        assert!(lines[2].starts_with("com-Amazon"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(&["name", "note"]);
        t.add_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_seconds(1.23456), "1.235");
        assert_eq!(fmt_ratio(5.903), "5.90x");
        assert_eq!(fmt_percent(0.385), "38.5%");
    }

    #[test]
    fn csv_and_json_round_trip_to_disk() {
        let dir = std::env::temp_dir().join("imm_bench_output_test");
        let csv_path = dir.join("t.csv");
        let mut t = TextTable::new(&["x"]);
        t.add_row(vec!["1".into()]);
        t.write_csv(&csv_path).unwrap();
        assert!(std::fs::read_to_string(&csv_path).unwrap().contains('1'));

        let json_path = dir.join("log.json");
        write_json_log(&json_path, &[]).unwrap();
        assert_eq!(std::fs::read_to_string(&json_path).unwrap().trim(), "[]");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn results_dir_honours_env_override() {
        // Note: avoid mutating the real environment; just check the default.
        let d = results_dir();
        assert!(!d.as_os_str().is_empty());
    }
}

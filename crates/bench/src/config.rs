//! Runtime configuration of the experiment binaries via environment
//! variables, so the same binaries serve both quick smoke runs and the
//! longer paper-style sweeps.
//!
//! | Variable             | Default       | Meaning                                   |
//! |----------------------|---------------|-------------------------------------------|
//! | `IMM_BENCH_K`        | `10`          | seeds per run (paper: 50)                 |
//! | `IMM_BENCH_EPSILON`  | `0.5`         | IMM ε (paper: 0.5)                        |
//! | `IMM_BENCH_SCALE`    | `small`       | dataset scale: `small` or `full`          |
//! | `IMM_BENCH_THREADS`  | `1,2,4,8`     | thread counts for scaling sweeps          |
//! | `IMM_RESULTS_DIR`    | `results`     | where CSV/JSON outputs are written        |

use crate::datasets::Scale;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Number of seeds `k` each benchmark run selects.
pub fn bench_k() -> usize {
    env_parse("IMM_BENCH_K", 10).max(1)
}

/// The ε used by every benchmark run.
pub fn bench_epsilon() -> f64 {
    let eps: f64 = env_parse("IMM_BENCH_EPSILON", 0.5);
    if eps > 0.0 && eps < 1.0 {
        eps
    } else {
        0.5
    }
}

/// Dataset scale selector.
pub fn bench_scale() -> Scale {
    match std::env::var("IMM_BENCH_SCALE").unwrap_or_default().to_ascii_lowercase().as_str() {
        "full" => Scale::Full,
        _ => Scale::Small,
    }
}

/// Thread counts used by the strong-scaling sweeps.
pub fn bench_threads() -> Vec<usize> {
    let raw = std::env::var("IMM_BENCH_THREADS").unwrap_or_else(|_| "1,2,4,8".to_string());
    let mut out: Vec<usize> =
        raw.split(',').filter_map(|p| p.trim().parse().ok()).filter(|&t| t > 0).collect();
    if out.is_empty() {
        out = vec![1, 2, 4, 8];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_without_env() {
        assert!(bench_k() >= 1);
        let eps = bench_epsilon();
        assert!(eps > 0.0 && eps < 1.0);
        assert!(!bench_threads().is_empty());
        let _ = bench_scale();
    }
}

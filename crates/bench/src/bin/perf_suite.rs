//! The machine-readable performance baseline: one fixed sampling +
//! selection + query-serving workload, timed and written as `BENCH_7.json`
//! so later PRs can prove they did not regress the hot paths.
//!
//! Unlike the figure/table binaries (which sweep parameters to reproduce the
//! paper), this suite pins a single deterministic workload and reports a
//! small set of tracked metrics. Comparing two commits means running the bin
//! once on each, on the same machine, and diffing the `metrics` object.
//!
//! # Workload
//!
//! A seeded `social_network` graph under constant-probability IC weights,
//! sized so seed selection — not sampling — dominates (small RRR sets, many
//! of them). Five phases:
//!
//! 0. **Executor dispatch** — the fork-join round-trip cost on the two
//!    execution strategies the workspace has used: *spawn-per-round*
//!    (`std::thread::scope` creating fresh OS threads every round — what
//!    the scatter/gather serving paid per CELF round before the persistent
//!    runtime) vs the *persistent* process-global `imm-exec` pool
//!    (`rayon::scope` delegating to long-lived workers). Median over many
//!    rounds of the same trivial task fan-out.
//! 1. **Sampling** — bulk-generate θ RRR sets on a rayon pool.
//! 2. **Selection** — `select_seeds` (EfficientIMM kernel) at budget k,
//!    median of three runs.
//! 3. **Serving** — freeze a `SketchIndex`; measure Top-K latency on a
//!    *fresh* `QueryEngine` per trial (so every trial pays the full greedy
//!    cost, which is what the lazy-greedy selection optimizes), and
//!    uncached `Spread` latency on a shared engine.
//! 4. **Sharded serving** — partition the same index into each tracked
//!    shard count and measure the scatter/gather path: cold Top-K on a
//!    fresh `ShardedEngine` per trial and uncached Spread on a shared one.
//!    The single-index numbers of phase 3 stay in the report, so the
//!    serving trajectory and the sharding overhead/crossover are both
//!    visible in one file.
//! 5. **Observability overhead** — per-op cost of the two `imm-obs`
//!    hot-path primitives (relaxed counter add, histogram record),
//!    measured directly, plus the instrumented sampling throughput of
//!    phase 1 compared against an `obs-off` build's throughput when
//!    `--obs-baseline PATH` points at that build's output. The guard
//!    asserts (full runs only) that instrumentation costs no more than
//!    run-to-run noise.
//!
//! # Output schema (`BENCH_7.json`)
//!
//! ```json
//! {
//!   "bench": "perf_suite",            // constant tag
//!   "schema_version": 4,              // bump on layout changes
//!   "smoke": false,                   // true when --smoke shrank the run
//!   "workload": {
//!     "nodes": 60000, "edges": 623940,   // graph size actually built
//!     "theta": 60000,                    // RRR sets sampled
//!     "k": 64,                           // selection / Top-K budget
//!     "threads": 2,                      // requested sampling width
//!     "pool_threads": 1,                 // resolved global-pool width
//!     "shard_counts": [1, 2, 4],         // sharded-serving sweep
//!     "model": "independent-cascade",
//!     "edge_probability": 0.02,
//!     "rng_seed": 4242
//!   },
//!   "metrics": {
//!     "executor": {                     // phase 0 dispatch round-trips
//!       "spawn_per_round_us": 25.0,     //   fresh OS threads per round
//!       "persistent_scope_us": 0.4      //   persistent imm-exec pool
//!     },
//!     "sampling_sets_per_sec": 1.0e6,   // θ / sampling wall time
//!     "selection_ms": 12.5,             // median select_seeds wall, ms
//!     "topk_p50_ms": 9.1,               // median cold Top-K latency, ms
//!     "spread_p50_us": 40.2,            // median uncached Spread, µs
//!     "rrr_memory_bytes": 123456,       // CoverageStats::memory_bytes
//!     "sharded_serving": [              // one entry per shard count
//!       {"shards": 1, "topk_p50_ms": 9.5, "spread_p50_us": 41.0},
//!       {"shards": 2, "topk_p50_ms": 8.0, "spread_p50_us": 35.1},
//!       {"shards": 4, "topk_p50_ms": 7.2, "spread_p50_us": 33.8}
//!     ],
//!     "obs_overhead": {                 // phase 5 instrumentation guard
//!       "recording_enabled": true,      //   false under --features obs-off
//!       "counter_add_ns": 3.1,          //   one relaxed counter add
//!       "histogram_record_ns": 4.0,     //   one relaxed histogram record
//!       "obs_events_per_set": 2.0,      //   core counter deltas / θ
//!       "baseline_sampling_sets_per_sec": 1.02e6, // from --obs-baseline
//!       "sampling_throughput_ratio": 0.99         // instrumented/baseline
//!     }
//!   },
//!   "obs_metrics": { ... }              // full imm-obs registry snapshot,
//!                                       // imm_bench::obs::registry_json()
//!                                       // shape (its own schema_version) —
//!                                       // same serializer as the CLI's
//!                                       // `stats --metrics`
//! }
//! ```
//!
//! Schema v4 replaces v3's `exec_metrics` array with the `obs_metrics`
//! registry embed; the exec counters appear inside it under their
//! unchanged (byte-stable) names.
//!
//! All timings are wall-clock medians over the trial counts below; the
//! memory figure is the collection's own heap accounting (the peak-RSS
//! *estimate* — the sets dominate the process footprint at this scale).
//!
//! # Flags
//!
//! * `--smoke` — shrink every dimension so the run finishes in well under a
//!   second; used by CI to prove the bin runs and its JSON parses.
//! * `--out PATH` — write the JSON somewhere other than `./BENCH_7.json`.
//! * `--obs-baseline PATH` — a BENCH JSON produced by an `obs-off` build of
//!   this bin on the same machine; its sampling throughput becomes the
//!   denominator of `sampling_throughput_ratio`. Full (non-smoke) runs
//!   assert the instrumented throughput is within noise of that baseline.
//!
//! After writing, the bin reads the file back and re-parses it, so a run
//! that exits 0 has by construction produced valid JSON.

use efficient_imm::balance::Schedule;
use efficient_imm::sampling::{generate_rrr_sets, SamplingConfig};
use efficient_imm::{select_seeds, Algorithm, ExecutionConfig};
use imm_diffusion::DiffusionModel;
use imm_graph::{generators, CsrGraph, EdgeWeights};
use imm_rrr::AdaptivePolicy;
use imm_service::{Query, QueryEngine, QueryResponse, SketchIndex};
use imm_shard::{ShardedEngine, ShardedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Fixed base seed of the workload (graph + query streams).
const RNG_SEED: u64 = 4242;

struct Workload {
    nodes: usize,
    theta: usize,
    k: usize,
    threads: usize,
    shard_counts: Vec<usize>,
    edge_probability: f32,
    sampling_trials: usize,
    selection_trials: usize,
    topk_trials: usize,
    spread_trials: usize,
    executor_rounds: usize,
}

impl Workload {
    fn full() -> Self {
        Workload {
            nodes: 60_000,
            theta: 60_000,
            k: 64,
            threads: 2,
            shard_counts: vec![1, 2, 4],
            edge_probability: 0.02,
            sampling_trials: 7,
            selection_trials: 3,
            topk_trials: 41,
            spread_trials: 501,
            executor_rounds: 501,
        }
    }

    fn smoke() -> Self {
        Workload {
            nodes: 1_500,
            theta: 1_000,
            k: 8,
            threads: 2,
            shard_counts: vec![1, 2],
            edge_probability: 0.05,
            sampling_trials: 1,
            selection_trials: 1,
            topk_trials: 3,
            spread_trials: 21,
            executor_rounds: 21,
        }
    }
}

/// Median of raw f64 samples (callers pass odd trial counts).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => value.clone(),
            _ => {
                eprintln!("error: --out requires a path operand");
                std::process::exit(2);
            }
        },
        None => "BENCH_7.json".to_string(),
    };
    let obs_baseline = match args.iter().position(|a| a == "--obs-baseline") {
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => Some(value.clone()),
            _ => {
                eprintln!("error: --obs-baseline requires a path operand");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let w = if smoke { Workload::smoke() } else { Workload::full() };

    // Metric registration is idempotent and happens before any timed phase,
    // so the snapshot at exit covers the full workspace catalog.
    imm_bench::obs::register_workspace_metrics();

    let mut rng = SmallRng::seed_from_u64(RNG_SEED);
    let graph = CsrGraph::from_edge_list(&generators::social_network(w.nodes, 8, 0.3, &mut rng));
    let weights = EdgeWeights::constant(&graph, w.edge_probability);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(w.threads).build().expect("pool builds");
    let sampling = SamplingConfig {
        model: DiffusionModel::IndependentCascade,
        rng_seed: RNG_SEED,
        policy: AdaptivePolicy::default(),
        schedule: Schedule::Dynamic { chunk: 32 },
        threads: w.threads,
        fused_counter: None,
    };

    // Phase 0: executor dispatch round-trips. Both sides fan out the same
    // trivial task set and join; the only difference is who runs it —
    // fresh OS threads every round (the pre-persistent-runtime regime) or
    // the long-lived process-global pool.
    let fanout = w.threads.max(2);
    let counter = std::sync::atomic::AtomicU64::new(0);
    let mut spawn_us: Vec<f64> = (0..w.executor_rounds)
        .map(|_| {
            let t = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..fanout {
                    s.spawn(|| counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
                }
            });
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    let spawn_per_round_us = median(&mut spawn_us);
    let mut persistent_us: Vec<f64> = (0..w.executor_rounds)
        .map(|_| {
            let t = Instant::now();
            rayon::scope(|s| {
                for _ in 0..fanout {
                    s.spawn(|_| {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    let persistent_scope_us = median(&mut persistent_us);
    assert_eq!(
        counter.into_inner(),
        2 * (w.executor_rounds * fanout) as u64,
        "every spawned task ran exactly once"
    );
    eprintln!(
        "[perf-suite] executor dispatch ({fanout} tasks/round): spawn-per-round \
         {spawn_per_round_us:.1} µs, persistent pool {persistent_scope_us:.1} µs"
    );

    // Phase 1: sampling throughput, median over trials — the phase is only
    // tens of milliseconds, so a single run would be mostly scheduler
    // noise, and phase 5's obs-off comparison needs a stable number on
    // both sides. Every trial regenerates the same θ sets (same seed); the
    // last trial's collection feeds the later phases. The core counter
    // deltas around the first timed region tell us how many
    // instrumentation events the workload actually generated per set
    // (phase 5 turns that into a cost bound).
    let sets_sampled_before = efficient_imm::metrics::SETS_SAMPLED.value();
    let mut sampling_trial_secs: Vec<f64> = Vec::with_capacity(w.sampling_trials);
    let t0 = Instant::now();
    let mut out = generate_rrr_sets(&graph, &weights, w.theta, 0, &sampling, &pool);
    sampling_trial_secs.push(t0.elapsed().as_secs_f64());
    let obs_events_during_sampling =
        // Two relaxed atomic adds per generated set (SETS_SAMPLED +
        // SET_VERTICES) at the one sampling choke point — the whole
        // instrumentation budget.
        2 * (efficient_imm::metrics::SETS_SAMPLED.value() - sets_sampled_before);
    for _ in 1..w.sampling_trials {
        let t = Instant::now();
        out = generate_rrr_sets(&graph, &weights, w.theta, 0, &sampling, &pool);
        sampling_trial_secs.push(t.elapsed().as_secs_f64());
    }
    let sampling_secs = median(&mut sampling_trial_secs);
    let collection = out.sets;
    let stats = collection.coverage_stats();
    eprintln!(
        "[perf-suite] sampled θ = {} in {sampling_secs:.3}s (avg set size {:.2})",
        collection.len(),
        stats.avg_size
    );

    // Phase 2: batch selection kernel.
    let exec = ExecutionConfig::new(Algorithm::Efficient, w.threads);
    let mut selection_ms: Vec<f64> = (0..w.selection_trials)
        .map(|_| {
            let t = Instant::now();
            let selection = select_seeds(&collection, w.k, &exec, &pool, None);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(selection.seeds.len(), w.k);
            ms
        })
        .collect();
    let selection_ms = median(&mut selection_ms);
    eprintln!("[perf-suite] selection k = {}: {selection_ms:.2} ms", w.k);

    // Phase 3: single-index serving. The spread loop measures the steady
    // state of the coverage-marking path (uncached, so every call does
    // real work). Cold Top-K is measured in phase 4, interleaved trial by
    // trial with the sharded engines, so the single/sharded comparison is
    // paired and immune to clock-speed drift across the run.
    let index =
        Arc::new(SketchIndex::build(&graph, collection, "perf-suite").expect("index builds"));
    let engine = QueryEngine::new(Arc::clone(&index));
    let mut query_rng = SmallRng::seed_from_u64(RNG_SEED ^ 0xC0FFEE);
    let mut spread_us: Vec<f64> = (0..w.spread_trials)
        .map(|_| {
            let seeds: Vec<u32> = (0..3).map(|_| query_rng.gen_range(0..w.nodes as u32)).collect();
            let query = Query::Spread { seeds };
            let t = Instant::now();
            let _ = engine.execute_uncached(&query);
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    let spread_p50_us = median(&mut spread_us);
    eprintln!("[perf-suite] uncached Spread p50: {spread_p50_us:.1} µs");

    // Phase 4: sharded scatter/gather serving, one sweep entry per shard
    // count. Cold Top-K uses a fresh engine per trial (the full
    // merged-bound greedy); Spread reuses one engine uncached. Every trial
    // round times a fresh single-index QueryEngine back to back with a
    // fresh ShardedEngine at each shard count, rotating which
    // configuration goes first — the paired, position-debiased design
    // keeps both the single/sharded ratio and the cross-shard-count
    // comparison honest on hosts whose effective clock drifts over a
    // multi-minute run (and whose caches remember the previous
    // measurement).
    let time_cold_topk = |run: &dyn Fn(&Query) -> QueryResponse| -> f64 {
        let t = Instant::now();
        let response = run(&Query::top_k(w.k));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        match response {
            QueryResponse::TopK { seeds, .. } => assert_eq!(seeds.len(), w.k),
            other => panic!("unexpected {other:?}"),
        }
        ms
    };
    let shard_indexes: Vec<Arc<ShardedIndex>> = w
        .shard_counts
        .iter()
        .map(|&shards| {
            Arc::new(ShardedIndex::from_index((*index).clone(), shards).expect("index partitions"))
        })
        .collect();
    let mut single_topk_ms: Vec<f64> = Vec::with_capacity(w.topk_trials);
    let mut sharded_topk_ms: Vec<Vec<f64>> =
        vec![Vec::with_capacity(w.topk_trials); shard_indexes.len()];
    let config_count = shard_indexes.len() + 1;
    for trial in 0..w.topk_trials {
        for slot in 0..config_count {
            match (trial + slot) % config_count {
                0 => {
                    let single = QueryEngine::new(Arc::clone(&index));
                    single_topk_ms.push(time_cold_topk(&|q| single.execute(q)));
                }
                cfg => {
                    let engine = ShardedEngine::new(Arc::clone(&shard_indexes[cfg - 1]));
                    sharded_topk_ms[cfg - 1].push(time_cold_topk(&|q| engine.execute(q)));
                }
            }
        }
    }
    let topk_p50_ms = median(&mut single_topk_ms);
    eprintln!("[perf-suite] cold TopK p50 (single index, paired trials): {topk_p50_ms:.2} ms");

    let mut sharded_serving = Vec::with_capacity(w.shard_counts.len());
    for (i, &shards) in w.shard_counts.iter().enumerate() {
        let sharded_topk_p50_ms = median(&mut sharded_topk_ms[i]);

        let engine = ShardedEngine::new(Arc::clone(&shard_indexes[i]));
        let mut shard_query_rng = SmallRng::seed_from_u64(RNG_SEED ^ 0x5A5A);
        let mut spread_us: Vec<f64> = (0..w.spread_trials)
            .map(|_| {
                let seeds: Vec<u32> =
                    (0..3).map(|_| shard_query_rng.gen_range(0..w.nodes as u32)).collect();
                let query = Query::Spread { seeds };
                let t = Instant::now();
                let _ = engine.execute_uncached(&query);
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        let sharded_spread_p50_us = median(&mut spread_us);
        eprintln!(
            "[perf-suite] {shards} shards: cold TopK p50 {sharded_topk_p50_ms:.2} ms, \
             uncached Spread p50 {sharded_spread_p50_us:.1} µs"
        );
        sharded_serving.push(serde_json::json!({
            "shards": shards,
            "topk_p50_ms": sharded_topk_p50_ms,
            "spread_p50_us": sharded_spread_p50_us,
        }));
    }

    // Phase 5: observability overhead. Per-op costs come from hammering
    // the two hot-path primitives directly (a scratch counter/histogram so
    // the loop is exactly one relaxed atomic op per iteration); the
    // end-to-end check compares phase 1's instrumented sampling throughput
    // against an obs-off build's run when one is supplied.
    let micro_ops: u64 = if smoke { 200_000 } else { 5_000_000 };
    static SCRATCH_COUNTER: imm_obs::Counter =
        imm_obs::Counter::new("bench_scratch_counter", "perf-suite overhead probe (unregistered)");
    static SCRATCH_HISTOGRAM: imm_obs::Histogram = imm_obs::Histogram::new(
        "bench_scratch_histogram",
        "perf-suite overhead probe (unregistered)",
        imm_obs::Unit::Nanoseconds,
    );
    let t = Instant::now();
    for _ in 0..micro_ops {
        SCRATCH_COUNTER.increment();
    }
    let counter_add_ns = t.elapsed().as_secs_f64() * 1e9 / micro_ops as f64;
    let t = Instant::now();
    for i in 0..micro_ops {
        SCRATCH_HISTOGRAM.record(i);
    }
    let histogram_record_ns = t.elapsed().as_secs_f64() * 1e9 / micro_ops as f64;
    // Defeat dead-code elimination of the obs-off no-op loops.
    std::hint::black_box((SCRATCH_COUNTER.value(), SCRATCH_HISTOGRAM.snapshot().count));
    let sampling_sets_per_sec = w.theta as f64 / sampling_secs.max(1e-9);
    let obs_events_per_set = obs_events_during_sampling as f64 / w.theta.max(1) as f64;
    let mut obs_overhead = serde_json::json!({
        "recording_enabled": imm_obs::recording_enabled(),
        "counter_add_ns": counter_add_ns,
        "histogram_record_ns": histogram_record_ns,
        "obs_events_per_set": obs_events_per_set,
    });
    eprintln!(
        "[perf-suite] obs overhead: counter add {counter_add_ns:.2} ns, histogram record \
         {histogram_record_ns:.2} ns, {obs_events_per_set:.1} events/set"
    );
    if let Some(path) = &obs_baseline {
        let raw = std::fs::read_to_string(path).expect("read --obs-baseline json");
        let baseline: serde_json::Value =
            serde_json::from_str(&raw).expect("--obs-baseline parses as JSON");
        let baseline_rate = baseline["metrics"]["sampling_sets_per_sec"]
            .as_f64()
            .expect("--obs-baseline has metrics.sampling_sets_per_sec");
        let ratio = sampling_sets_per_sec / baseline_rate.max(1e-9);
        eprintln!(
            "[perf-suite] instrumented sampling at {ratio:.3}x the obs-off baseline \
             ({sampling_sets_per_sec:.0} vs {baseline_rate:.0} sets/s)"
        );
        if let serde_json::Value::Object(pairs) = &mut obs_overhead {
            pairs.push((
                "baseline_sampling_sets_per_sec".to_string(),
                serde_json::json!(baseline_rate),
            ));
            pairs.push(("sampling_throughput_ratio".to_string(), serde_json::json!(ratio)));
        }
        // The guard: instrumentation must hide inside run-to-run noise. The
        // 15% band is deliberately generous — shared CI hosts see that much
        // jitter between identical runs — while still catching a hot-path
        // mistake (a lock, a seq-cst op, or a per-vertex event would show
        // up as an integer-factor slowdown, not a percentage). Smoke runs
        // are too short to clear the noise floor, so they only record.
        if !smoke {
            assert!(
                ratio > 0.85,
                "instrumented sampling dropped to {ratio:.3}x of the obs-off baseline \
                 ({sampling_sets_per_sec:.0} vs {baseline_rate:.0} sets/s)"
            );
        }
    }

    let report = serde_json::json!({
        "bench": "perf_suite",
        "schema_version": 4,
        "smoke": smoke,
        "workload": {
            "nodes": graph.num_nodes(),
            "edges": graph.num_edges(),
            "theta": w.theta,
            "k": w.k,
            "threads": w.threads,
            "pool_threads": rayon::current_num_threads(),
            "shard_counts": w.shard_counts.clone(),
            "model": "independent-cascade",
            "edge_probability": w.edge_probability,
            "rng_seed": RNG_SEED,
        },
        "metrics": {
            "executor": {
                "spawn_per_round_us": spawn_per_round_us,
                "persistent_scope_us": persistent_scope_us,
            },
            "sampling_sets_per_sec": sampling_sets_per_sec,
            "selection_ms": selection_ms,
            "topk_p50_ms": topk_p50_ms,
            "spread_p50_us": spread_p50_us,
            "rrr_memory_bytes": stats.memory_bytes,
            "sharded_serving": sharded_serving,
            "obs_overhead": obs_overhead,
        },
        "obs_metrics": imm_bench::obs::registry_json(),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &rendered).expect("write BENCH json");

    // Self-check: the written file must parse back as JSON with the tracked
    // metric keys present — this is the contract `ci.sh --smoke` relies on.
    let reread = std::fs::read_to_string(&out_path).expect("reread BENCH json");
    let parsed: serde_json::Value = serde_json::from_str(&reread).expect("BENCH json parses");
    for key in ["sampling_sets_per_sec", "selection_ms", "topk_p50_ms", "spread_p50_us"] {
        assert!(parsed["metrics"][key].as_f64().is_some(), "metric {key} missing from {out_path}");
    }
    let sweep = parsed["metrics"]["sharded_serving"].as_array().expect("sharded sweep present");
    assert_eq!(sweep.len(), w.shard_counts.len(), "one sweep entry per shard count");
    for entry in sweep {
        assert!(entry["topk_p50_ms"].as_f64().is_some(), "sharded topk metric missing");
        assert!(entry["spread_p50_us"].as_f64().is_some(), "sharded spread metric missing");
    }
    for key in ["spawn_per_round_us", "persistent_scope_us"] {
        assert!(
            parsed["metrics"]["executor"][key].as_f64().is_some(),
            "executor metric {key} missing from {out_path}"
        );
    }
    for key in ["counter_add_ns", "histogram_record_ns", "obs_events_per_set"] {
        assert!(
            parsed["metrics"]["obs_overhead"][key].as_f64().is_some(),
            "obs overhead metric {key} missing from {out_path}"
        );
    }
    let registry = parsed["obs_metrics"]["metrics"].as_array().expect("obs registry embedded");
    assert!(!registry.is_empty(), "obs registry snapshot is empty");
    assert!(
        registry.iter().any(|m| m["name"] == serde_json::json!("exec_scopes")),
        "exec counters missing from the embedded registry"
    );
    println!("{rendered}");
    println!("perf suite OK: {out_path}");
}

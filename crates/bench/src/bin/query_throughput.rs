//! Query-serving throughput over a frozen sketch index: queries/sec vs.
//! worker threads vs. cache hit rate.
//!
//! The serving scenario the ROADMAP targets: sampling runs **once**
//! (`build-index`), then heavy query traffic — top-k budgets, spread and
//! marginal-gain estimates — is answered from the frozen sketch. The
//! workload draws from a bounded pool of distinct queries with repetition,
//! the way real dashboards re-ask the same questions, so the LRU response
//! cache sees realistic hit rates.
//!
//! Environment knobs: `IMM_BENCH_DATASET` (default web-Google),
//! `IMM_BENCH_THREADS`, `IMM_BENCH_K`, `IMM_BENCH_EPSILON`,
//! `IMM_QUERY_BATCH` (default 512), `IMM_QUERY_POOL` (default 64 distinct
//! queries).

use efficient_imm::{run_imm, Algorithm, ExecutionConfig, ImmParams};
use imm_bench::output::{fmt_seconds, results_dir, TextTable};
use imm_bench::runner::weights_for;
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;
use imm_service::{Query, QueryEngine, SketchIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default).max(1)
}

/// A bounded pool of distinct queries, then a batch sampled from it with
/// repetition.
fn build_workload(
    num_nodes: usize,
    k: usize,
    pool_size: usize,
    batch_size: usize,
    rng: &mut SmallRng,
) -> Vec<Query> {
    let mut pool: Vec<Query> = Vec::with_capacity(pool_size);
    for i in 0..pool_size {
        let query = match i % 3 {
            0 => Query::top_k(1 + i % k.max(1)),
            1 => {
                let len = 1 + rng.gen_range(0usize..4);
                let seeds = (0..len).map(|_| rng.gen_range(0..num_nodes as u32)).collect();
                Query::Spread { seeds }
            }
            _ => {
                let len = 1 + rng.gen_range(0usize..3);
                let seeds = (0..len).map(|_| rng.gen_range(0..num_nodes as u32)).collect();
                Query::Marginal { seeds, candidate: rng.gen_range(0..num_nodes as u32) }
            }
        };
        pool.push(query);
    }
    (0..batch_size).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect()
}

fn main() {
    let scale = config::bench_scale();
    let k = config::bench_k();
    let eps = config::bench_epsilon();
    let thread_counts = config::bench_threads();
    let batch_size = env_usize("IMM_QUERY_BATCH", 512);
    let pool_size = env_usize("IMM_QUERY_POOL", 64);
    let name = std::env::var("IMM_BENCH_DATASET").unwrap_or_else(|_| "web-Google".to_string());
    let spec = datasets::find(scale, &name).expect("dataset exists in the registry");
    let dataset = spec.build();

    // Sampling phase, once: run IMM with set retention and freeze the index.
    let model = DiffusionModel::IndependentCascade;
    let params = ImmParams::new(k, eps, model).with_seed(0x5E21 ^ spec.seed);
    let exec = ExecutionConfig::new(Algorithm::Efficient, 4).with_retained_sets(true);
    let t0 = Instant::now();
    let result = run_imm(&dataset.graph, weights_for(&dataset, model), &params, &exec)
        .expect("valid parameters");
    let build_seconds = t0.elapsed().as_secs_f64();
    let index = Arc::new(
        SketchIndex::build(&dataset.graph, result.rrr_sets.expect("retained"), spec.name)
            .expect("index build"),
    );
    eprintln!(
        "[query-throughput] index frozen: θ = {}, {} nodes, {:.1} KiB, built in {}",
        index.num_sets(),
        index.num_nodes(),
        index.memory_bytes() as f64 / 1024.0,
        fmt_seconds(build_seconds),
    );

    let mut rng = SmallRng::seed_from_u64(0xBEEF ^ spec.seed);
    let workload = build_workload(index.num_nodes(), k, pool_size, batch_size, &mut rng);

    let mut table = TextTable::new(&[
        "Threads",
        "Queries",
        "Wall (s)",
        "Queries/sec",
        "Cache hit rate",
        "Cache entries",
    ]);
    for &threads in &thread_counts {
        // Fresh engine per thread count: every run starts cold and pays the
        // same greedy-prefix and cache-fill cost.
        let engine = QueryEngine::new(Arc::clone(&index));
        let t0 = Instant::now();
        let responses = engine.execute_batch(&workload, threads);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(responses.len(), workload.len());
        let stats = engine.cache_stats();
        table.add_row(vec![
            threads.to_string(),
            workload.len().to_string(),
            fmt_seconds(wall),
            format!("{:.0}", workload.len() as f64 / wall.max(1e-9)),
            format!("{:.1}%", stats.hit_rate() * 100.0),
            stats.entries.to_string(),
        ]);
        eprintln!("[query-throughput] threads={threads} done");
    }

    println!(
        "Query throughput over a frozen sketch index on {} (k = {k}, eps = {eps}, θ = {})",
        spec.name,
        index.num_sets()
    );
    println!("{}", table.render());
    let csv = results_dir().join("query_throughput.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

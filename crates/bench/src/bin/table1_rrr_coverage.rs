//! Table I — input graphs and RRR-set characteristics.
//!
//! For every dataset analogue this prints node/edge counts and the average
//! and maximum RRR-set coverage under the IC model with ε = 0.5, next to the
//! coverage the paper reports for the original SNAP graph.

use efficient_imm::balance::Schedule;
use efficient_imm::sampling::{generate_rrr_sets, SamplingConfig};
use imm_bench::output::{fmt_percent, results_dir, TextTable};
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;
use imm_rrr::AdaptivePolicy;

fn main() {
    let scale = config::bench_scale();
    let num_sets = 512;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");

    let mut table = TextTable::new(&[
        "Graph",
        "Nodes",
        "Edges",
        "Avg RRR coverage",
        "Max RRR coverage",
        "Paper avg",
        "Paper max",
    ]);

    for spec in datasets::registry(scale) {
        let dataset = spec.build();
        let cfg = SamplingConfig {
            model: DiffusionModel::IndependentCascade,
            rng_seed: 0xC0FFEE ^ spec.seed,
            policy: AdaptivePolicy::default(),
            schedule: Schedule::Dynamic { chunk: 16 },
            threads: 4,
            fused_counter: None,
        };
        let out = generate_rrr_sets(&dataset.graph, &dataset.ic_weights, num_sets, 0, &cfg, &pool);
        let stats = out.sets.coverage_stats();
        table.add_row(vec![
            spec.name.to_string(),
            dataset.graph.num_nodes().to_string(),
            dataset.graph.num_edges().to_string(),
            fmt_percent(stats.avg_coverage),
            fmt_percent(stats.max_coverage),
            fmt_percent(spec.reference.avg_rrr_coverage),
            fmt_percent(spec.reference.max_rrr_coverage),
        ]);
        eprintln!("[table1] {} done ({} sets)", spec.name, stats.count);
    }

    println!("Table I: Input Graph and RRRset Characteristics (IC, eps = 0.5)");
    println!("{}", table.render());
    let csv = results_dir().join("table1_rrr_coverage.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

//! Table II — percentage of core time spent checking the visited bitmap,
//! original data structures vs. NUMA-aware placement (8 NUMA nodes).
//!
//! Uses the NUMA-placement cost model of `efficient_imm::instrumented` (the
//! reproduction host has no NUMA hardware; see DESIGN.md §4).

use efficient_imm::instrumented::bitmap_check_cost;
use imm_bench::output::{fmt_percent, results_dir, TextTable};
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;
use imm_numa::Topology;

fn main() {
    let scale = config::bench_scale();
    // The five datasets the paper's Table II reports.
    let subset = ["com-Amazon", "com-YouTube", "soc-Pokec", "com-LJ", "web-Google"];
    let topology = Topology::perlmutter_node();
    let threads = 128.min(topology.num_cores());
    let num_sets = 96;

    let mut table = TextTable::new(&[
        "Graph",
        "Original bitmap time",
        "NUMA-aware bitmap time",
        "Improvement",
        "Paper original",
        "Paper NUMA-aware",
        "Paper improvement",
    ]);

    // Paper Table II values (original %, NUMA-aware %, improvement %).
    let paper: &[(&str, f64, f64, f64)] = &[
        ("com-Amazon", 0.382, 0.238, 0.38),
        ("com-YouTube", 0.386, 0.239, 0.38),
        ("soc-Pokec", 0.449, 0.166, 0.63),
        ("com-LJ", 0.463, 0.185, 0.60),
        ("web-Google", 0.290, 0.136, 0.53),
    ];

    for (name, paper_orig, paper_aware, paper_improvement) in paper {
        let Some(spec) = subset
            .iter()
            .find(|n| n.eq_ignore_ascii_case(name))
            .and_then(|n| datasets::find(scale, n))
        else {
            continue;
        };
        let dataset = spec.build();
        let original = bitmap_check_cost(
            &dataset.graph,
            &dataset.ic_weights,
            DiffusionModel::IndependentCascade,
            num_sets,
            0xBEEF ^ spec.seed,
            topology,
            threads,
            false,
        );
        let aware = bitmap_check_cost(
            &dataset.graph,
            &dataset.ic_weights,
            DiffusionModel::IndependentCascade,
            num_sets,
            0xBEEF ^ spec.seed,
            topology,
            threads,
            true,
        );
        let improvement = if original.bitmap_fraction > 0.0 {
            1.0 - aware.bitmap_fraction / original.bitmap_fraction
        } else {
            0.0
        };
        table.add_row(vec![
            spec.name.to_string(),
            fmt_percent(original.bitmap_fraction),
            fmt_percent(aware.bitmap_fraction),
            fmt_percent(improvement),
            fmt_percent(*paper_orig),
            fmt_percent(*paper_aware),
            fmt_percent(*paper_improvement),
        ]);
        eprintln!("[table2] {} done", spec.name);
    }

    println!("Table II: core-time share of the visited-bitmap check, original vs NUMA-aware placement (8 NUMA nodes)");
    println!("{}", table.render());
    let csv = results_dir().join("table2_numa_bitmap.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

//! Time-to-first-query of the two snapshot load paths: classic
//! read-decode (checksum + full heap decode) vs the `imm-store` zero-copy
//! mmap open, swept across index sizes and written as `BENCH_9.json`.
//!
//! The number this bin exists to pin down is **TTFQ** — wall time from
//! "the daemon is told to open this file" to "the first Top-K answer is
//! out". The read-decode path pays the whole file up front (read + FNV +
//! decode), so its TTFQ grows linearly with the index; the mapped path
//! parses a few head pages and lets queries fault data pages in on
//! demand, so its TTFQ stays near-flat. The sweep makes the crossover and
//! the asymptotic gap visible in one file.
//!
//! Both paths are measured through the same [`imm_store::Store`] entry
//! points the daemon uses (`open_mapped` strictly — no silent fallback
//! can contaminate the mapped column; `open_read` for the classic path),
//! and both end with one uncached Top-K on a fresh `QueryEngine`, so the
//! mapped column includes the page faults its laziness deferred.
//!
//! # Output schema (`BENCH_9.json`)
//!
//! ```json
//! {
//!   "bench": "startup_bench",
//!   "schema_version": 1,
//!   "smoke": false,
//!   "workload": {
//!     "nodes_per_size": [...], "theta_per_size": [...],
//!     "k": 8, "repeats": 5, "model": "independent-cascade",
//!     "edge_probability": 0.02, "rng_seed": 9424
//!   },
//!   "sizes": [
//!     { "nodes": 8000, "theta": 8000, "snapshot_bytes": 1234567,
//!       "mapped":      { "open_ns": ..., "map_ns": ..., "decode_ns": ...,
//!                        "first_query_ns": ..., "ttfq_ns": ... },
//!       "read_decode": { "open_ns": ..., "map_ns": 0, "decode_ns": ...,
//!                        "first_query_ns": ..., "ttfq_ns": ... },
//!       "ttfq_speedup": 12.3 }
//!   ],
//!   "obs_metrics": { ... }   // imm_bench::obs::registry_json() embed
//! }
//! ```
//!
//! All nanosecond figures are medians over `repeats` runs (odd count). A
//! full (non-smoke) run asserts the mapped TTFQ on the largest index is
//! at least 5x faster than read-decode — the acceptance bar for serving
//! restarts from mapped snapshots.
//!
//! # Flags
//!
//! * `--smoke` — tiny sizes, one repeat; CI proves the bin runs and its
//!   JSON parses.
//! * `--out PATH` — write somewhere other than `./BENCH_9.json`.

use imm_diffusion::DiffusionModel;
use imm_graph::{generators, CsrGraph, EdgeWeights};
use imm_service::{Query, QueryEngine, SampleSpec, SketchIndex};
use imm_store::{OpenedIndex, Store};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Fixed base seed of the workload (graph + sampling).
const RNG_SEED: u64 = 9424;

/// Median of raw u64 samples (callers pass odd repeat counts).
fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One timed open + first query through a given store entry point.
struct Ttfq {
    open_ns: u64,
    map_ns: u64,
    decode_ns: u64,
    first_query_ns: u64,
}

impl Ttfq {
    fn total_ns(&self) -> u64 {
        self.open_ns + self.map_ns + self.decode_ns + self.first_query_ns
    }
}

fn time_path(open: impl Fn() -> OpenedIndex, k: usize) -> Ttfq {
    let opened = open();
    let timings = opened.timings;
    let engine = QueryEngine::new(Arc::new(opened.index));
    let t = Instant::now();
    let response = engine.execute_uncached(&Query::top_k(k));
    let first_query_ns = t.elapsed().as_nanos() as u64;
    std::hint::black_box(&response);
    Ttfq {
        open_ns: timings.open_ns,
        map_ns: timings.map_ns,
        decode_ns: timings.decode_ns,
        first_query_ns,
    }
}

/// Median each phase independently over `repeats` runs. Phase-wise medians
/// don't necessarily sum to the median total, so the total is medianed on
/// its own — `ttfq_ns` is the honest end-to-end figure, the phases are the
/// honest breakdown.
fn median_ttfq(open: impl Fn() -> OpenedIndex, k: usize, repeats: usize) -> (Ttfq, u64) {
    let runs: Vec<Ttfq> = (0..repeats).map(|_| time_path(&open, k)).collect();
    let phase = |f: fn(&Ttfq) -> u64| {
        let mut v: Vec<u64> = runs.iter().map(f).collect();
        median(&mut v)
    };
    let mut totals: Vec<u64> = runs.iter().map(Ttfq::total_ns).collect();
    (
        Ttfq {
            open_ns: phase(|t| t.open_ns),
            map_ns: phase(|t| t.map_ns),
            decode_ns: phase(|t| t.decode_ns),
            first_query_ns: phase(|t| t.first_query_ns),
        },
        median(&mut totals),
    )
}

fn phase_json(t: &Ttfq, ttfq_ns: u64) -> serde_json::Value {
    serde_json::json!({
        "open_ns": t.open_ns,
        "map_ns": t.map_ns,
        "decode_ns": t.decode_ns,
        "first_query_ns": t.first_query_ns,
        "ttfq_ns": ttfq_ns,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => value.clone(),
            _ => {
                eprintln!("error: --out requires a path operand");
                std::process::exit(2);
            }
        },
        None => "BENCH_9.json".to_string(),
    };

    // (nodes, theta) per size; theta scales with the graph so the snapshot
    // grows roughly linearly across the sweep.
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(800, 800), (1_600, 1_600)]
    } else {
        vec![(8_000, 8_000), (30_000, 30_000), (90_000, 90_000)]
    };
    let repeats = if smoke { 1 } else { 5 };
    let k = 8usize;
    let edge_probability = 0.02f32;

    imm_bench::obs::register_workspace_metrics();

    let dir = std::env::temp_dir().join("imm_startup_bench");
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let mut size_reports = Vec::with_capacity(sizes.len());
    let mut last_speedup = 0.0f64;
    for &(nodes, theta) in &sizes {
        let mut rng = SmallRng::seed_from_u64(RNG_SEED ^ nodes as u64);
        let graph = CsrGraph::from_edge_list(&generators::social_network(nodes, 8, 0.3, &mut rng));
        let weights = EdgeWeights::constant(&graph, edge_probability);
        let spec = SampleSpec::new(DiffusionModel::IndependentCascade, RNG_SEED);
        let index = SketchIndex::sample(&graph, &weights, spec, theta, 2, "startup-bench")
            .expect("index samples");
        let path = dir.join(format!("startup_{nodes}.sketch"));
        index.save_to_path(&path).expect("snapshot saves");
        let snapshot_bytes = std::fs::metadata(&path).expect("snapshot stat").len();
        drop(index);

        let (mapped, mapped_ttfq_ns) = median_ttfq(
            || Store::open_mapped(&path).expect("mapped open (strict, no fallback)"),
            k,
            repeats,
        );
        let (read, read_ttfq_ns) =
            median_ttfq(|| Store::open_read(&path).expect("read-decode open"), k, repeats);
        let speedup = read_ttfq_ns as f64 / mapped_ttfq_ns.max(1) as f64;
        last_speedup = speedup;
        eprintln!(
            "[startup-bench] {nodes} nodes / θ = {theta} ({snapshot_bytes} B): mapped TTFQ \
             {:.2} ms vs read-decode {:.2} ms ({speedup:.1}x)",
            mapped_ttfq_ns as f64 / 1e6,
            read_ttfq_ns as f64 / 1e6,
        );
        size_reports.push(serde_json::json!({
            "nodes": nodes,
            "theta": theta,
            "snapshot_bytes": snapshot_bytes,
            "mapped": phase_json(&mapped, mapped_ttfq_ns),
            "read_decode": phase_json(&read, read_ttfq_ns),
            "ttfq_speedup": speedup,
        }));
        std::fs::remove_file(&path).ok();
    }

    // The acceptance bar: on the largest index a mapped restart must beat a
    // full decode by at least 5x. Smoke sizes are too small to clear the
    // constant page-table costs, so they only record.
    if !smoke {
        assert!(
            last_speedup >= 5.0,
            "mapped TTFQ is only {last_speedup:.1}x faster than read-decode on the largest \
             index (need >= 5x)"
        );
    }

    let report = serde_json::json!({
        "bench": "startup_bench",
        "schema_version": 1,
        "smoke": smoke,
        "workload": {
            "nodes_per_size": sizes.iter().map(|s| s.0).collect::<Vec<_>>(),
            "theta_per_size": sizes.iter().map(|s| s.1).collect::<Vec<_>>(),
            "k": k,
            "repeats": repeats,
            "model": "independent-cascade",
            "edge_probability": edge_probability,
            "rng_seed": RNG_SEED,
        },
        "sizes": size_reports,
        "obs_metrics": imm_bench::obs::registry_json(),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &rendered).expect("write BENCH json");

    // Self-check: the written file must parse back with the tracked keys —
    // the contract `ci.sh --smoke` relies on.
    let reread = std::fs::read_to_string(&out_path).expect("reread BENCH json");
    let parsed: serde_json::Value = serde_json::from_str(&reread).expect("BENCH json parses");
    let entries = parsed["sizes"].as_array().expect("sizes array present");
    assert_eq!(entries.len(), sizes.len(), "one entry per index size");
    for entry in entries {
        for path in ["mapped", "read_decode"] {
            for key in ["open_ns", "map_ns", "decode_ns", "first_query_ns", "ttfq_ns"] {
                assert!(
                    entry[path][key].as_u64().is_some(),
                    "{path}.{key} missing from {out_path}"
                );
            }
        }
        assert!(entry["ttfq_speedup"].as_f64().is_some(), "speedup missing from {out_path}");
    }
    let registry = parsed["obs_metrics"]["metrics"].as_array().expect("obs registry embedded");
    assert!(
        registry.iter().any(|m| m["name"] == serde_json::json!("store_mmap_opens")),
        "store counters missing from the embedded registry"
    );
    println!("{rendered}");
    println!("startup bench OK: {out_path}");
}

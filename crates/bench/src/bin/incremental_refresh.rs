//! Incremental sketch refresh vs. full rebuild across edge-churn rates.
//!
//! The dynamic-graph scenario the ROADMAP targets: a serving index is built
//! once, then the graph keeps mutating (followers added/dropped, weights
//! drifting). For each churn rate the harness applies one random delta batch
//! — half deletions of existing edges, half insertions — and measures
//! `SketchIndex::apply_delta` (invalidate → resample touched sets → patch
//! postings) against `SketchIndex::sample` from scratch on the mutated
//! graph. Both paths produce byte-identical indexes (asserted), so the table
//! is a pure cost comparison.
//!
//! Both paths start from `(old graph, delta)` and end with the new graph
//! plus a refreshed index, so the rebuild column includes the graph-mutation
//! cost (`GraphDelta::apply`) the incremental path pays internally.
//!
//! Environment knobs: `IMM_REFRESH_NODES` (default 10000),
//! `IMM_REFRESH_DEGREE` (default 8), `IMM_REFRESH_THETA` (default 20000),
//! `IMM_REFRESH_CHURN` (comma-separated fractions, default
//! `0.001,0.005,0.01,0.02,0.05`), `IMM_REFRESH_EDGE_PROB` (default 0.0625).

use imm_bench::output::{fmt_ratio, fmt_seconds, results_dir, TextTable};
use imm_diffusion::DiffusionModel;
use imm_graph::{generators, CsrGraph, EdgeWeights, GraphDelta};
use imm_service::{SampleSpec, SketchIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default).max(1)
}

fn env_f32(key: &str, default: f32) -> f32 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn churn_rates() -> Vec<f64> {
    match std::env::var("IMM_REFRESH_CHURN") {
        Ok(raw) => raw.split(',').filter_map(|p| p.trim().parse().ok()).collect(),
        Err(_) => vec![0.001, 0.005, 0.01, 0.02, 0.05],
    }
}

/// A churn batch: delete `churn/2` random existing edges, insert the same
/// number of fresh random edges.
fn churn_delta(graph: &CsrGraph, churn: f64, edge_prob: f32, rng: &mut SmallRng) -> GraphDelta {
    let n = graph.num_nodes() as u32;
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let touched = ((edges.len() as f64 * churn) as usize).max(2);
    let mut delta = GraphDelta::new();
    let mut used = std::collections::HashSet::new();
    for _ in 0..touched / 2 {
        let mut pick = rng.gen_range(0..edges.len());
        while !used.insert(pick) {
            pick = rng.gen_range(0..edges.len());
        }
        let (src, dst) = edges[pick];
        delta = delta.delete(src, dst);
        delta = delta.insert(rng.gen_range(0..n), rng.gen_range(0..n), edge_prob);
    }
    delta
}

fn main() {
    let nodes = env_usize("IMM_REFRESH_NODES", 10_000);
    let degree = env_usize("IMM_REFRESH_DEGREE", 8);
    let theta = env_usize("IMM_REFRESH_THETA", 20_000);
    let edge_prob = env_f32("IMM_REFRESH_EDGE_PROB", 0.0625);
    let threads = 4usize;

    // Erdős–Rényi in the subcritical reverse-percolation regime
    // (p · degree < 1): RRR-set sizes have an exponential tail, so the cost
    // of a refresh tracks the *number* of invalidated sets. (On heavy-tailed
    // graphs the giant sets contain every touched vertex, so any mutation
    // invalidates most of the sampling work no matter how it is organized.)
    let mut rng = SmallRng::seed_from_u64(0x0DE17A);
    let graph = CsrGraph::from_edge_list(&generators::erdos_renyi(
        nodes,
        degree as f64 / nodes as f64,
        true,
        &mut rng,
    ));
    let weights = EdgeWeights::constant(&graph, edge_prob);
    let spec = SampleSpec::new(DiffusionModel::IndependentCascade, 0x5EED);

    let t0 = Instant::now();
    let base_index =
        SketchIndex::sample(&graph, &weights, spec, theta, threads, "churn-bench").expect("sample");
    let base_build = t0.elapsed().as_secs_f64();
    eprintln!(
        "[incremental-refresh] base index: θ = {theta}, {} nodes, {} edges, sampled in {}",
        nodes,
        graph.num_edges(),
        fmt_seconds(base_build),
    );

    let mut table = TextTable::new(&[
        "Churn",
        "Touched edges",
        "Resampled sets",
        "Resampled %",
        "Incremental (s)",
        "Rebuild (s)",
        "Speedup",
    ]);

    for churn in churn_rates() {
        // Fresh copies per churn rate so every row mutates the same base.
        let mut index = base_index.clone();
        let mut delta_rng = SmallRng::seed_from_u64((churn * 1e6) as u64 ^ 0xC0FFEE);
        let delta = churn_delta(&graph, churn, edge_prob, &mut delta_rng);
        let touched = delta.len();

        let t0 = Instant::now();
        let (new_graph, new_weights, stats) =
            index.apply_delta(&graph, &weights, &delta).expect("delta applies");
        let incremental = t0.elapsed().as_secs_f64();

        // The rebuild path pays the same graph mutation before resampling.
        let t0 = Instant::now();
        let (rebuild_graph, rebuild_weights) =
            delta.apply(&graph, &weights).expect("delta applies");
        let rebuilt = SketchIndex::sample(
            &rebuild_graph,
            &rebuild_weights,
            spec,
            theta,
            threads,
            "churn-bench",
        )
        .expect("rebuild");
        let rebuild = t0.elapsed().as_secs_f64();
        assert_eq!(rebuild_graph.num_edges(), new_graph.num_edges());
        drop((new_graph, new_weights));

        assert_eq!(index.sets(), rebuilt.sets(), "refresh must equal the rebuild");

        table.add_row(vec![
            format!("{:.2}%", churn * 100.0),
            touched.to_string(),
            format!("{}/{}", stats.resampled_sets, stats.total_sets),
            format!("{:.1}%", stats.resampled_fraction() * 100.0),
            fmt_seconds(incremental),
            fmt_seconds(rebuild),
            fmt_ratio(rebuild / incremental.max(1e-9)),
        ]);
        eprintln!("[incremental-refresh] churn {:.2}% done", churn * 100.0);
    }

    println!(
        "Incremental refresh vs full rebuild ({nodes} nodes, avg degree {degree}, θ = {theta})"
    );
    println!("{}", table.render());
    let csv = results_dir().join("incremental_refresh.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

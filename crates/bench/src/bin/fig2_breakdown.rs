//! Figure 2 — Ripples runtime breakdown by kernel as the core count grows
//! (web-Google analogue), showing `Find_Most_Influential_Set` taking over.
//!
//! Reported per thread count: wall-clock share of each kernel and the
//! modelled per-kernel span (which is what diverges on a many-core machine).

use efficient_imm::{run_imm, Algorithm, ExecutionConfig, ImmParams};
use imm_bench::output::{fmt_percent, fmt_seconds, results_dir, TextTable};
use imm_bench::runner::weights_for;
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;

fn main() {
    let scale = config::bench_scale();
    let k = config::bench_k();
    let eps = config::bench_epsilon();
    let thread_counts = config::bench_threads();
    let name = std::env::var("IMM_BENCH_DATASET").unwrap_or_else(|_| "web-Google".to_string());
    let spec = datasets::find(scale, &name).expect("dataset exists in the registry");
    let dataset = spec.build();

    let mut table = TextTable::new(&[
        "Model",
        "Threads",
        "Generate_RRRsets (s)",
        "Find_Most_Influential (s)",
        "Selection share",
        "Selection span (ops)",
        "Sampling span (ops)",
    ]);

    for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
        for &threads in &thread_counts {
            let params = ImmParams::new(k, eps, model).with_seed(0xF16 ^ spec.seed);
            let exec = ExecutionConfig::new(Algorithm::Ripples, threads);
            let result = run_imm(&dataset.graph, weights_for(&dataset, model), &params, &exec)
                .expect("valid parameters");
            let timings = &result.breakdown.timings;
            table.add_row(vec![
                model.short_name().to_uppercase(),
                threads.to_string(),
                fmt_seconds(timings.generate_rrrsets.as_secs_f64()),
                fmt_seconds(timings.find_most_influential.as_secs_f64()),
                fmt_percent(timings.selection_fraction()),
                result.breakdown.selection_work.max_thread_ops().to_string(),
                result.breakdown.sampling_work.max_thread_ops().to_string(),
            ]);
            eprintln!("[fig2] {} threads={} done", model.short_name(), threads);
        }
    }

    println!("Figure 2: Ripples runtime breakdown on {} (k = {k}, eps = {eps})", spec.name);
    println!("{}", table.render());
    let csv = results_dir().join("fig2_breakdown.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

//! Figure 5 — runtime of the seed-selection step with and without the
//! adaptive vertex-occurrence counter update, at the maximum thread count.
//!
//! The paper reports 11.6x–60.9x selection-time speedups on four skewed
//! datasets when the counter is rebuilt from surviving sets instead of
//! decremented through the (huge) covered sets.

use efficient_imm::balance::Schedule;
use efficient_imm::sampling::{generate_rrr_sets, SamplingConfig};
use efficient_imm::selection::efficient::select_seeds_efficient;
use efficient_imm::{Algorithm, ExecutionConfig};
use imm_bench::output::{fmt_ratio, fmt_seconds, results_dir, TextTable};
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;
use imm_rrr::AdaptivePolicy;
use std::time::Instant;

fn main() {
    let scale = config::bench_scale();
    let k = config::bench_k();
    let threads = *config::bench_threads().iter().max().unwrap_or(&8);
    let num_sets = 384;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");

    // The four skewed datasets of Figure 5.
    let subset = ["com-YouTube", "soc-Pokec", "com-LJ", "twitter7"];

    let mut table = TextTable::new(&[
        "Graph",
        "w/o adaptive update (s)",
        "w/ adaptive update (s)",
        "Speedup",
        "Rebuilds chosen",
    ]);

    for name in subset {
        let Some(spec) = datasets::find(scale, name) else { continue };
        let dataset = spec.build();
        let cfg = SamplingConfig {
            model: DiffusionModel::IndependentCascade,
            rng_seed: 0xF15 ^ spec.seed,
            policy: AdaptivePolicy::default(),
            schedule: Schedule::Dynamic { chunk: 16 },
            threads,
            fused_counter: None,
        };
        let sets =
            generate_rrr_sets(&dataset.graph, &dataset.ic_weights, num_sets, 0, &cfg, &pool).sets;

        let mut with_cfg = ExecutionConfig::new(Algorithm::Efficient, threads);
        with_cfg.features.adaptive_counter_update = true;
        let mut without_cfg = with_cfg;
        without_cfg.features.adaptive_counter_update = false;

        // Selection is fast at this scale; repeat to get a stable figure.
        let reps = 5;
        let t0 = Instant::now();
        let mut rebuilds = 0usize;
        for _ in 0..reps {
            rebuilds = select_seeds_efficient(&sets, k, &with_cfg, &pool, None).counter_rebuilds;
        }
        let with_time = t0.elapsed().as_secs_f64() / reps as f64;

        let t0 = Instant::now();
        for _ in 0..reps {
            select_seeds_efficient(&sets, k, &without_cfg, &pool, None);
        }
        let without_time = t0.elapsed().as_secs_f64() / reps as f64;

        table.add_row(vec![
            spec.name.to_string(),
            fmt_seconds(without_time),
            fmt_seconds(with_time),
            fmt_ratio(without_time / with_time.max(1e-9)),
            rebuilds.to_string(),
        ]);
        eprintln!("[fig5] {} done", spec.name);
    }

    println!("Figure 5: seed-selection runtime w/ and w/o the adaptive counter update ({threads} threads, k = {k})");
    println!("{}", table.render());
    let csv = results_dir().join("fig5_adaptive_update.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

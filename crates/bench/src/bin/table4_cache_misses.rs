//! Table IV — L1+L2 cache misses of the `Find_Most_Influential_Set` kernel,
//! Ripples vs. EfficientIMM.
//!
//! The misses come from the trace-driven cache simulator in `imm-memsim`
//! (hardware counters are unavailable here; see DESIGN.md §4). The number the
//! paper emphasizes — the reduction factor between the two kernels — is
//! reported next to the paper's measurement.

use efficient_imm::balance::Schedule;
use efficient_imm::instrumented::{cache_misses_efficient, cache_misses_ripples};
use efficient_imm::sampling::{generate_rrr_sets, SamplingConfig};
use imm_bench::output::{fmt_ratio, results_dir, TextTable};
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;
use imm_memsim::HierarchyConfig;
use imm_rrr::AdaptivePolicy;

fn main() {
    let scale = config::bench_scale();
    let k = config::bench_k();
    let threads = 8;
    let num_sets = 256;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");

    let mut table = TextTable::new(&[
        "Graph",
        "Ripples (L1+L2 misses)",
        "EfficientIMM (L1+L2 misses)",
        "Reduction",
        "Paper reduction",
    ]);

    for spec in datasets::cache_miss_subset(scale) {
        let dataset = spec.build();
        let cfg = SamplingConfig {
            model: DiffusionModel::IndependentCascade,
            rng_seed: 0xCACE ^ spec.seed,
            policy: AdaptivePolicy::default(),
            schedule: Schedule::Dynamic { chunk: 16 },
            threads: 4,
            fused_counter: None,
        };
        let sets =
            generate_rrr_sets(&dataset.graph, &dataset.ic_weights, num_sets, 0, &cfg, &pool).sets;

        let hierarchy = HierarchyConfig::default();
        let ripples = cache_misses_ripples(&sets, k, threads, hierarchy);
        let efficient = cache_misses_efficient(&sets, k, threads, hierarchy, 0.5);
        let reduction =
            ripples.l1_plus_l2_misses as f64 / efficient.l1_plus_l2_misses.max(1) as f64;
        let paper_reduction =
            match (spec.reference.ripples_cache_misses, spec.reference.efficientimm_cache_misses) {
                (Some(r), Some(e)) => Some(r as f64 / e as f64),
                _ => None,
            };
        table.add_row(vec![
            spec.name.to_string(),
            ripples.l1_plus_l2_misses.to_string(),
            efficient.l1_plus_l2_misses.to_string(),
            fmt_ratio(reduction),
            paper_reduction.map(fmt_ratio).unwrap_or_else(|| "-".to_string()),
        ]);
        eprintln!("[table4] {} reduction {:.1}x", spec.name, reduction);
    }

    println!("Table IV: L1+L2 cache misses in Find_Most_Influential_Set, Ripples vs EfficientIMM ({} threads)", threads);
    println!("{}", table.render());
    let csv = results_dir().join("table4_cache_misses.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

//! Figure 1 — Ripples strong-scaling performance (LT and IC) as the thread
//! count grows, showing the baseline's scalability ceiling.
//!
//! The modelled speedups come from the measured per-thread work profiles (the
//! reproduction host has one physical core; DESIGN.md §4 explains the model).
//! Wall-clock self-speedups are printed alongside for many-core hosts.

use efficient_imm::Algorithm;
use imm_bench::output::{fmt_ratio, fmt_seconds, results_dir, TextTable};
use imm_bench::scaling::scaling_curve;
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;

fn main() {
    let scale = config::bench_scale();
    let k = config::bench_k();
    let eps = config::bench_epsilon();
    let thread_counts = config::bench_threads();
    // The paper's Figure 1/2 use web-Google; its analogue is the default.
    let name = std::env::var("IMM_BENCH_DATASET").unwrap_or_else(|_| "web-Google".to_string());
    let spec = datasets::find(scale, &name).expect("dataset exists in the registry");
    let dataset = spec.build();

    let mut table =
        TextTable::new(&["Model", "Threads", "Wall time (s)", "Modeled speedup", "Wall speedup"]);

    for model in [DiffusionModel::LinearThreshold, DiffusionModel::IndependentCascade] {
        let curve = scaling_curve(&dataset, model, Algorithm::Ripples, &thread_counts, k, eps);
        for point in &curve {
            table.add_row(vec![
                model.short_name().to_uppercase(),
                point.threads.to_string(),
                fmt_seconds(point.measurement.wall_seconds),
                fmt_ratio(point.modeled_self_speedup),
                fmt_ratio(point.wall_self_speedup),
            ]);
        }
        eprintln!("[fig1] {} model done", model.short_name());
    }

    println!("Figure 1: Ripples strong scaling on {} (k = {k}, eps = {eps})", spec.name);
    println!("{}", table.render());
    let csv = results_dir().join("fig1_ripples_scaling.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

//! Figure 7 — strong scaling of EfficientIMM normalized to 1-thread and
//! 8-thread Ripples, Independent Cascade model, k = 50 (configurable),
//! ε = 0.5.

use imm_bench::scaling::scaling_figure;
use imm_diffusion::DiffusionModel;

fn main() {
    scaling_figure(DiffusionModel::IndependentCascade, "fig7_scaling_ic");
}

//! Table III — best runtime of EfficientIMM vs. Ripples for the IC and LT
//! diffusion models on every dataset analogue.
//!
//! Each engine is run over the configured thread counts and its best
//! wall-clock time is reported together with the speedup, mirroring the
//! paper's `speedup_ic.csv` / `speedup_lt.csv` artifact outputs.

use efficient_imm::Algorithm;
use imm_bench::output::{fmt_ratio, fmt_seconds, results_dir, write_json_log, TextTable};
use imm_bench::runner::run_configuration;
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;

fn main() {
    let scale = config::bench_scale();
    let k = config::bench_k();
    let eps = config::bench_epsilon();
    let thread_counts = config::bench_threads();

    for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
        let mut table = TextTable::new(&[
            "Dataset",
            "Speedup (wall)",
            "Speedup (modeled)",
            "EfficientIMM Time (s)",
            "Ripples Time (s)",
            "Ripples Best #Threads",
            "EfficientIMM Best #Threads",
            "Paper speedup",
        ]);
        let mut all_measurements = Vec::new();

        for spec in datasets::registry(scale) {
            let dataset = spec.build();
            // (wall-clock best, its thread count, modeled-time best) per engine.
            let mut best: Vec<(Algorithm, f64, usize, f64)> = Vec::new();
            for algorithm in [Algorithm::Ripples, Algorithm::Efficient] {
                let mut best_time = f64::INFINITY;
                let mut best_threads = 0usize;
                let mut best_modeled = f64::INFINITY;
                for &threads in &thread_counts {
                    let m = run_configuration(&dataset, model, algorithm, threads, k, eps);
                    if m.wall_seconds < best_time {
                        best_time = m.wall_seconds;
                        best_threads = threads;
                    }
                    best_modeled = best_modeled.min(m.modeled_time);
                    all_measurements.push(m);
                }
                best.push((algorithm, best_time, best_threads, best_modeled));
            }
            let (_, ripples_time, ripples_threads, ripples_modeled) = best[0];
            let (_, eff_time, eff_threads, eff_modeled) = best[1];
            let speedup = ripples_time / eff_time;
            let modeled_speedup = ripples_modeled / eff_modeled;
            let paper_speedup = match model {
                DiffusionModel::IndependentCascade => spec
                    .reference
                    .ripples_ic_seconds
                    .map(|r| r / spec.reference.efficientimm_ic_seconds),
                DiffusionModel::LinearThreshold => spec
                    .reference
                    .ripples_lt_seconds
                    .map(|r| r / spec.reference.efficientimm_lt_seconds),
            };
            table.add_row(vec![
                spec.name.to_string(),
                fmt_ratio(speedup),
                fmt_ratio(modeled_speedup),
                fmt_seconds(eff_time),
                fmt_seconds(ripples_time),
                ripples_threads.to_string(),
                eff_threads.to_string(),
                paper_speedup.map(fmt_ratio).unwrap_or_else(|| "OOM (Ripples)".to_string()),
            ]);
            eprintln!(
                "[table3:{}] {} wall speedup {:.2}x, modeled {:.2}x",
                model.short_name(),
                spec.name,
                speedup,
                modeled_speedup
            );
        }

        println!("Table III ({} model): best runtime, k = {k}, eps = {eps}", model);
        println!("{}", table.render());
        let csv = results_dir().join(format!("speedup_{}.csv", model.short_name()));
        table.write_csv(&csv).expect("write csv");
        let log = results_dir().join(format!("strong-scaling-logs-{}.json", model.short_name()));
        write_json_log(&log, &all_measurements).expect("write json");
        println!("CSV written to {}\nJSON log written to {}\n", csv.display(), log.display());
    }
}

//! Closed-loop load test of the `imm-serve` daemon: sustained query
//! throughput and tail latency over a real unix socket, written as
//! `BENCH_8.json` so later PRs can prove they did not regress the
//! serving path.
//!
//! The storm is the serving analogue of `perf_suite`: one deterministic
//! workload, a small set of tracked metrics, diffable across commits.
//! Where `perf_suite` times the in-process engines, this bin pays the
//! full daemon tax — frame encode/decode, admission, the scatter/gather
//! across shard workers — under concurrent connections.
//!
//! # Workload
//!
//! A seeded `social_network` graph under constant-probability IC
//! weights, sampled into a `SketchIndex` and served by a daemon on a
//! temp unix socket. Before the storm, one mixed battery is checked
//! byte-identical against an in-process `ShardedEngine` (the parity
//! property the socket test suite enforces exhaustively). Then M client
//! threads run closed-loop: each sends `requests_per_client` batches of
//! 1–4 mixed queries (plain and audience-masked Top-K, spreads,
//! marginals) drawn from a per-client seeded RNG, timing every
//! round-trip.
//!
//! # Output schema (`BENCH_8.json`)
//!
//! ```json
//! {
//!   "bench": "query_storm",          // constant tag
//!   "schema_version": 1,             // bump on layout changes
//!   "smoke": false,                  // true when --smoke shrank the run
//!   "workload": {
//!     "nodes": 2000, "edges": 16510, // graph size actually built
//!     "theta": 2000,                 // RRR sets served
//!     "shards": 4,                   // daemon shard segments
//!     "server_threads": 4,           // daemon serving parallelism
//!     "clients": 4,                  // concurrent closed-loop clients
//!     "requests_per_client": 200,
//!     "model": "independent-cascade",
//!     "edge_probability": 0.1,
//!     "rng_seed": 8484
//!   },
//!   "metrics": {
//!     "wall_seconds": 1.9,
//!     "requests": 800, "queries": 2009,
//!     "sustained_qps": 1057.4,       // queries / wall_seconds
//!     "requests_per_sec": 421.1,
//!     "latency_ms": { "p50": 8.3, "p90": 14.1, "p99": 22.7, "max": 31.0 },
//!     "parity_checked": true,
//!     "serve": {                     // daemon-side obs counters
//!       "connections": 6, "requests": 803, "queries": 2031,
//!       "protocol_errors": 0, "rollouts": 0
//!     }
//!   },
//!   "obs_metrics": { ... }           // full imm-obs registry snapshot
//! }
//! ```

use imm_diffusion::DiffusionModel;
use imm_graph::{generators, CsrGraph, EdgeWeights};
use imm_rrr::{BitSet, NodeId};
use imm_serve::{Client, Listen, Server, ServerConfig};
use imm_service::{Query, SampleSpec, SketchIndex};
use imm_shard::{ShardedEngine, ShardedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RNG_SEED: u64 = 8484;

struct Workload {
    nodes: usize,
    theta: usize,
    shards: usize,
    server_threads: usize,
    clients: usize,
    requests_per_client: usize,
    edge_probability: f64,
}

impl Workload {
    fn full() -> Self {
        Workload {
            nodes: 2_000,
            theta: 2_000,
            shards: 4,
            server_threads: 4,
            clients: 4,
            requests_per_client: 200,
            edge_probability: 0.1,
        }
    }

    fn smoke() -> Self {
        Workload {
            nodes: 300,
            theta: 200,
            shards: 2,
            server_threads: 2,
            clients: 2,
            requests_per_client: 15,
            edge_probability: 0.1,
        }
    }
}

/// One mixed batch of 1–4 queries from the full serving vocabulary.
fn mixed_batch(rng: &mut SmallRng, num_nodes: usize) -> Vec<Query> {
    let n = num_nodes as u32;
    (0..rng.gen_range(1..5))
        .map(|_| match rng.gen_range(0..4u8) {
            0 => Query::top_k(rng.gen_range(1..17)),
            1 => {
                let seeds: Vec<NodeId> =
                    (0..rng.gen_range(1..4)).map(|_| rng.gen_range(0..n)).collect();
                Query::Spread { seeds }
            }
            2 => {
                let seeds: Vec<NodeId> =
                    (0..rng.gen_range(1..3)).map(|_| rng.gen_range(0..n)).collect();
                Query::Marginal { seeds, candidate: rng.gen_range(0..n) }
            }
            _ => {
                let audience = BitSet::from_iter_with_capacity(
                    num_nodes,
                    (0..rng.gen_range(1..24)).map(|_| rng.gen_range(0..num_nodes)),
                );
                Query::audience_top_k(rng.gen_range(1..6), audience)
            }
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Read one counter/gauge out of the registry snapshot by name.
fn metric_value(registry: &serde_json::Value, name: &str) -> f64 {
    registry["metrics"]
        .as_array()
        .and_then(|metrics| {
            metrics
                .iter()
                .find(|m| m["name"] == serde_json::json!(name))
                .and_then(|m| m["value"].as_f64())
        })
        .unwrap_or(0.0)
}

fn socket_path() -> PathBuf {
    let dir = std::env::temp_dir().join("imm_serve_bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("query_storm_{}.sock", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => value.clone(),
            _ => {
                eprintln!("error: --out requires a path operand");
                std::process::exit(2);
            }
        },
        None => "BENCH_8.json".to_string(),
    };
    let w = if smoke { Workload::smoke() } else { Workload::full() };

    // Metric registration is idempotent and happens before any timed phase,
    // so the snapshot at exit covers the full workspace catalog.
    imm_bench::obs::register_workspace_metrics();

    let mut rng = SmallRng::seed_from_u64(RNG_SEED);
    let graph = CsrGraph::from_edge_list(&generators::social_network(w.nodes, 8, 0.3, &mut rng));
    let weights = EdgeWeights::constant(&graph, w.edge_probability as f32);
    let num_nodes = graph.num_nodes();
    eprintln!(
        "[query-storm] sampling θ = {} over {} nodes / {} edges",
        w.theta,
        num_nodes,
        graph.num_edges()
    );
    let spec = SampleSpec::new(DiffusionModel::IndependentCascade, RNG_SEED);
    let index = SketchIndex::sample(&graph, &weights, spec, w.theta, w.server_threads, "storm")
        .expect("sample");
    let sharded =
        Arc::new(ShardedIndex::from_index(index, w.shards).expect("index shards cleanly"));

    let path = socket_path();
    let config = {
        let mut c = ServerConfig::new(Listen::Unix(path.clone()));
        c.threads = w.server_threads;
        c
    };
    let handle = Server::start(Arc::clone(&sharded), None, config, || {
        serde_json::to_string_pretty(&imm_bench::obs::registry_json()).expect("registry serializes")
    })
    .expect("daemon starts");
    let address = handle.address().clone();

    // Parity sanity before the storm: one mixed battery must come back
    // byte-identical to the in-process engine (the socket test suite
    // proves this exhaustively; the bench keeps a tripwire).
    let local = ShardedEngine::with_options(Arc::clone(&sharded), w.server_threads, 0);
    let mut probe = SmallRng::seed_from_u64(RNG_SEED ^ 0xFEED);
    let battery = mixed_batch(&mut probe, num_nodes);
    let expected = local.execute_batch(&battery, w.server_threads);
    let mut checker =
        Client::connect_with_retry(&address, Duration::from_secs(5)).expect("daemon reachable");
    let remote = checker.batch(&battery).expect("parity battery");
    assert_eq!(remote.len(), expected.len(), "parity battery answer count");
    for (i, (got, want)) in remote.iter().zip(expected.iter()).enumerate() {
        match got {
            Ok(response) => assert_eq!(response, want, "query {i} diverged over the socket"),
            Err(rejection) => panic!("query {i} rejected with no budget set: {rejection:?}"),
        }
    }
    let info = checker.info().expect("info verb");
    assert_eq!(info.shards as usize, w.shards, "daemon shard count");
    eprintln!("[query-storm] parity checked against {} ({} shards)", address, info.shards);

    // The storm: closed-loop clients, each timing every round-trip.
    eprintln!(
        "[query-storm] {} clients x {} requests, mixed 1-4 query batches",
        w.clients, w.requests_per_client
    );
    let storm_started = Instant::now();
    let workers: Vec<_> = (0..w.clients)
        .map(|client_id| {
            let address = address.clone();
            let requests = w.requests_per_client;
            std::thread::spawn(move || {
                let mut client = Client::connect_with_retry(&address, Duration::from_secs(5))
                    .expect("client connects");
                let mut rng = SmallRng::seed_from_u64(RNG_SEED ^ (0xB0 + client_id as u64));
                let mut latencies_ms = Vec::with_capacity(requests);
                let mut queries_sent = 0usize;
                for _ in 0..requests {
                    let batch = mixed_batch(&mut rng, num_nodes);
                    queries_sent += batch.len();
                    let sent = Instant::now();
                    let answers = client.batch(&batch).expect("storm batch");
                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(answers.len(), batch.len(), "answer count");
                    assert!(
                        answers.iter().all(|a| a.is_ok()),
                        "unbudgeted daemon rejected a storm query"
                    );
                }
                (latencies_ms, queries_sent)
            })
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut total_queries = 0usize;
    for worker in workers {
        let (lats, queries) = worker.join().expect("client thread");
        latencies_ms.extend(lats);
        total_queries += queries;
    }
    let wall_seconds = storm_started.elapsed().as_secs_f64();
    let total_requests = w.clients * w.requests_per_client;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let sustained_qps = total_queries as f64 / wall_seconds;
    let requests_per_sec = total_requests as f64 / wall_seconds;
    eprintln!(
        "[query-storm] {total_queries} queries in {wall_seconds:.2}s: {sustained_qps:.0} q/s, \
         p50 {:.2} ms, p99 {:.2} ms",
        percentile(&latencies_ms, 50.0),
        percentile(&latencies_ms, 99.0)
    );

    // Exercise the metrics verb, then read the daemon-side counters out of
    // the same process-global registry the verb serialized.
    let metrics_payload = checker.metrics_json().expect("metrics verb");
    let daemon_registry: serde_json::Value =
        serde_json::from_str(&metrics_payload).expect("metrics verb returns the obs registry");
    let serve_counters = serde_json::json!({
        "connections": metric_value(&daemon_registry, "serve_connections"),
        "requests": metric_value(&daemon_registry, "serve_requests"),
        "queries": metric_value(&daemon_registry, "serve_queries"),
        "protocol_errors": metric_value(&daemon_registry, "serve_protocol_errors"),
        "rollouts": metric_value(&daemon_registry, "serve_rollouts"),
    });

    checker.shutdown().expect("shutdown verb");
    drop(checker);
    handle.join().expect("accept loop exits cleanly");
    assert!(!path.exists(), "daemon removed its socket file");

    let report = serde_json::json!({
        "bench": "query_storm",
        "schema_version": 1,
        "smoke": smoke,
        "workload": {
            "nodes": num_nodes,
            "edges": graph.num_edges(),
            "theta": w.theta,
            "shards": w.shards,
            "server_threads": w.server_threads,
            "clients": w.clients,
            "requests_per_client": w.requests_per_client,
            "model": "independent-cascade",
            "edge_probability": w.edge_probability,
            "rng_seed": RNG_SEED,
        },
        "metrics": {
            "wall_seconds": wall_seconds,
            "requests": total_requests,
            "queries": total_queries,
            "sustained_qps": sustained_qps,
            "requests_per_sec": requests_per_sec,
            "latency_ms": {
                "p50": percentile(&latencies_ms, 50.0),
                "p90": percentile(&latencies_ms, 90.0),
                "p99": percentile(&latencies_ms, 99.0),
                "max": latencies_ms.last().copied().unwrap_or(0.0),
            },
            "parity_checked": true,
            "serve": serve_counters,
        },
        "obs_metrics": imm_bench::obs::registry_json(),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &rendered).expect("write BENCH json");

    // Self-check: the written file must parse back as JSON with the tracked
    // metric keys present — this is the contract `ci.sh --smoke` relies on.
    let reread = std::fs::read_to_string(&out_path).expect("reread BENCH json");
    let parsed: serde_json::Value = serde_json::from_str(&reread).expect("BENCH json parses");
    for key in ["sustained_qps", "requests_per_sec", "wall_seconds"] {
        assert!(parsed["metrics"][key].as_f64().is_some(), "metric {key} missing from {out_path}");
    }
    for key in ["p50", "p90", "p99", "max"] {
        assert!(
            parsed["metrics"]["latency_ms"][key].as_f64().is_some(),
            "latency metric {key} missing from {out_path}"
        );
    }
    assert!(
        parsed["metrics"]["serve"]["requests"].as_f64().unwrap_or(0.0) >= total_requests as f64,
        "daemon-side request counter below the client-side count"
    );
    let registry = parsed["obs_metrics"]["metrics"].as_array().expect("obs registry embedded");
    assert!(
        registry.iter().any(|m| m["name"] == serde_json::json!("serve_requests")),
        "serve counters missing from the embedded registry"
    );
    println!("{rendered}");
    println!("query storm OK: {out_path}");
}

//! Ablation study: each EfficientIMM optimization toggled off individually,
//! on the web-Google and com-LJ analogues.
//!
//! Not a table in the paper, but DESIGN.md calls out each optimization as a
//! separately justified design choice; this binary quantifies what each one
//! contributes on the reproduction's workloads.

use efficient_imm::{run_imm, Algorithm, EfficientFeatures, ExecutionConfig, ImmParams};
use imm_bench::output::{fmt_seconds, results_dir, TextTable};
use imm_bench::runner::weights_for;
use imm_bench::{config, datasets};
use imm_diffusion::DiffusionModel;
use std::time::Instant;

fn main() {
    let scale = config::bench_scale();
    let k = config::bench_k();
    let eps = config::bench_epsilon();
    let threads = *config::bench_threads().iter().max().unwrap_or(&8);

    type FeatureTweak = Box<dyn Fn(&mut EfficientFeatures)>;
    let variants: Vec<(&str, FeatureTweak)> = vec![
        ("all optimizations", Box::new(|_f: &mut EfficientFeatures| {})),
        ("no kernel fusion", Box::new(|f: &mut EfficientFeatures| f.kernel_fusion = false)),
        (
            "no adaptive representation",
            Box::new(|f: &mut EfficientFeatures| f.adaptive_representation = false),
        ),
        (
            "no adaptive counter update",
            Box::new(|f: &mut EfficientFeatures| f.adaptive_counter_update = false),
        ),
        ("no dynamic balancing", Box::new(|f: &mut EfficientFeatures| f.dynamic_balancing = false)),
        (
            "none (naive set partitioning)",
            Box::new(|f: &mut EfficientFeatures| *f = EfficientFeatures::none()),
        ),
    ];

    let mut table = TextTable::new(&[
        "Dataset",
        "Model",
        "Variant",
        "Wall time (s)",
        "Selection span (ops)",
        "RRR memory (MiB)",
    ]);

    for name in ["web-Google", "com-LJ"] {
        let Some(spec) = datasets::find(scale, name) else { continue };
        let dataset = spec.build();
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            for (label, tweak) in &variants {
                let mut exec = ExecutionConfig::new(Algorithm::Efficient, threads);
                tweak(&mut exec.features);
                let params = ImmParams::new(k, eps, model).with_seed(0xAB1A ^ spec.seed);
                let start = Instant::now();
                let result = run_imm(&dataset.graph, weights_for(&dataset, model), &params, &exec)
                    .expect("valid parameters");
                let wall = start.elapsed().as_secs_f64();
                table.add_row(vec![
                    spec.name.to_string(),
                    model.short_name().to_uppercase(),
                    label.to_string(),
                    fmt_seconds(wall),
                    result.breakdown.selection_work.max_thread_ops().to_string(),
                    format!("{:.2}", result.breakdown.rrr_memory_bytes as f64 / (1024.0 * 1024.0)),
                ]);
            }
            eprintln!("[ablation] {} {} done", spec.name, model.short_name());
        }
    }

    println!(
        "Ablation: EfficientIMM feature contributions ({threads} threads, k = {k}, eps = {eps})"
    );
    println!("{}", table.render());
    let csv = results_dir().join("ablation_features.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}

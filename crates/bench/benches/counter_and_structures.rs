//! Criterion micro-benchmarks of the low-level building blocks: the shared
//! atomic counter (increment throughput and the two-level parallel argmax),
//! the adaptive RRR-set representation's membership test, and the graph
//! generators used by the dataset registry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use efficient_imm::GlobalCounter;
use imm_graph::generators;
use imm_rrr::{AdaptivePolicy, RrrSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;

fn bench_counter(c: &mut Criterion) {
    let n = 100_000usize;
    let mut group = c.benchmark_group("global_counter");
    group.sample_size(20);

    group.bench_function("increment_1M_sequential", |b| {
        let counter = GlobalCounter::new(n);
        let mut rng = SmallRng::seed_from_u64(1);
        let targets: Vec<u32> = (0..1_000_000).map(|_| rng.gen_range(0..n as u32)).collect();
        b.iter(|| {
            for &t in &targets {
                counter.increment(t);
            }
        })
    });

    group.bench_function("increment_1M_parallel_4t", |b| {
        let counter = GlobalCounter::new(n);
        let mut rng = SmallRng::seed_from_u64(2);
        let targets: Vec<u32> = (0..1_000_000).map(|_| rng.gen_range(0..n as u32)).collect();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        b.iter(|| {
            pool.install(|| {
                targets.par_chunks(4096).for_each(|chunk| {
                    for &t in chunk {
                        counter.increment(t);
                    }
                })
            })
        })
    });

    let values: Vec<u64> = {
        let mut rng = SmallRng::seed_from_u64(3);
        (0..n).map(|_| rng.gen_range(0..10_000)).collect()
    };
    let counter = GlobalCounter::from_values(&values);
    for parts in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new("parallel_argmax", parts), &parts, |b, &p| {
            b.iter(|| black_box(counter.parallel_argmax(p)))
        });
    }
    group.finish();
}

fn bench_rrr_membership(c: &mut Criterion) {
    let n = 200_000usize;
    let mut rng = SmallRng::seed_from_u64(4);
    let members: Vec<u32> = (0..n as u32 / 8).map(|_| rng.gen_range(0..n as u32)).collect();
    let sorted = RrrSet::from_vertices(members.clone(), n, &AdaptivePolicy::always_sorted());
    let bitmap = RrrSet::from_vertices(members.clone(), n, &AdaptivePolicy::always_bitmap());
    let compressed = imm_rrr::CompressedRrrSet::from_vertices(members);
    let probes: Vec<u32> = (0..10_000).map(|_| rng.gen_range(0..n as u32)).collect();

    let mut group = c.benchmark_group("rrr_membership_10k_probes");
    group.sample_size(30);
    group.bench_function("sorted_binary_search", |b| {
        b.iter(|| probes.iter().filter(|&&v| sorted.contains(v)).count())
    });
    group.bench_function("bitmap_bit_test", |b| {
        b.iter(|| probes.iter().filter(|&&v| bitmap.contains(v)).count())
    });
    // The HBMax-style codec pays a streaming decode per probe — the overhead
    // the paper's adaptive representation is designed to avoid. Probe count is
    // reduced so the benchmark stays short.
    let few_probes = &probes[..100];
    group.bench_function("compressed_varint_decode_100_probes", |b| {
        b.iter(|| few_probes.iter().filter(|&&v| compressed.contains(v)).count())
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generators");
    group.sample_size(10);
    group.bench_function("social_network_10k", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(5);
            black_box(generators::social_network(10_000, 8, 0.3, &mut rng))
        })
    });
    group.bench_function("rmat_scale13", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(6);
            black_box(generators::rmat(13, 8, generators::RmatParams::default(), &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_counter, bench_rrr_membership, bench_generators);
criterion_main!(benches);

//! Criterion micro-benchmarks of the `Generate_RRRsets` kernel: IC vs. LT
//! sampling, kernel fusion on/off, and static vs. dynamic job balancing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use efficient_imm::balance::Schedule;
use efficient_imm::sampling::{generate_rrr_sets, SamplingConfig};
use efficient_imm::GlobalCounter;
use imm_bench::datasets::{find, Dataset, Scale};
use imm_diffusion::DiffusionModel;
use imm_rrr::AdaptivePolicy;
use std::hint::black_box;

fn dataset() -> Dataset {
    find(Scale::Small, "com-YouTube").expect("dataset").build()
}

fn bench_models(c: &mut Criterion) {
    let d = dataset();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let mut group = c.benchmark_group("generate_rrrsets_model");
    group.sample_size(10);
    for (model, weights) in [
        (DiffusionModel::IndependentCascade, &d.ic_weights),
        (DiffusionModel::LinearThreshold, &d.lt_weights),
    ] {
        let cfg = SamplingConfig {
            model,
            rng_seed: 7,
            policy: AdaptivePolicy::default(),
            schedule: Schedule::Dynamic { chunk: 16 },
            threads: 4,
            fused_counter: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(model.short_name()), &model, |b, _| {
            b.iter(|| black_box(generate_rrr_sets(&d.graph, weights, 128, 0, &cfg, &pool)))
        });
    }
    group.finish();
}

fn bench_fusion_and_balancing(c: &mut Criterion) {
    let d = dataset();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let mut group = c.benchmark_group("generate_rrrsets_features");
    group.sample_size(10);

    let base = SamplingConfig {
        model: DiffusionModel::IndependentCascade,
        rng_seed: 7,
        policy: AdaptivePolicy::default(),
        schedule: Schedule::Dynamic { chunk: 16 },
        threads: 4,
        fused_counter: None,
    };

    group.bench_function("unfused", |b| {
        b.iter(|| black_box(generate_rrr_sets(&d.graph, &d.ic_weights, 128, 0, &base, &pool)))
    });
    group.bench_function("fused_counter", |b| {
        let counter = GlobalCounter::new(d.graph.num_nodes());
        let cfg = SamplingConfig { fused_counter: Some(&counter), ..base };
        b.iter(|| black_box(generate_rrr_sets(&d.graph, &d.ic_weights, 128, 0, &cfg, &pool)))
    });
    group.bench_function("static_schedule", |b| {
        let cfg = SamplingConfig { schedule: Schedule::Static, ..base };
        b.iter(|| black_box(generate_rrr_sets(&d.graph, &d.ic_weights, 128, 0, &cfg, &pool)))
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_fusion_and_balancing);
criterion_main!(benches);

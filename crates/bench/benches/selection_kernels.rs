//! Criterion micro-benchmarks of the two `Find_Most_Influential_Set` kernels
//! (the per-kernel view behind Table III / Figures 6–7) and of the adaptive
//! counter update (Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use efficient_imm::balance::Schedule;
use efficient_imm::sampling::{generate_rrr_sets, SamplingConfig};
use efficient_imm::selection::efficient::select_seeds_efficient;
use efficient_imm::selection::ripples::select_seeds_ripples;
use efficient_imm::{Algorithm, ExecutionConfig};
use imm_bench::datasets::{find, Scale};
use imm_diffusion::DiffusionModel;
use imm_rrr::{AdaptivePolicy, RrrCollection};
use std::hint::black_box;

fn sample_sets(dataset_name: &str, num_sets: usize) -> RrrCollection {
    let spec = find(Scale::Small, dataset_name).expect("dataset");
    let dataset = spec.build();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let cfg = SamplingConfig {
        model: DiffusionModel::IndependentCascade,
        rng_seed: 0xBE7C ^ spec.seed,
        policy: AdaptivePolicy::default(),
        schedule: Schedule::Dynamic { chunk: 16 },
        threads: 2,
        fused_counter: None,
    };
    generate_rrr_sets(&dataset.graph, &dataset.ic_weights, num_sets, 0, &cfg, &pool).sets
}

fn bench_selection_kernels(c: &mut Criterion) {
    let sets = sample_sets("web-Google", 192);
    let k = 10;
    let mut group = c.benchmark_group("find_most_influential_set");
    group.sample_size(10);

    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        group.bench_with_input(BenchmarkId::new("ripples", threads), &threads, |b, &t| {
            b.iter(|| black_box(select_seeds_ripples(&sets, k, t, &pool)))
        });
        let exec = ExecutionConfig::new(Algorithm::Efficient, threads);
        group.bench_with_input(BenchmarkId::new("efficientimm", threads), &threads, |b, _| {
            b.iter(|| black_box(select_seeds_efficient(&sets, k, &exec, &pool, None)))
        });
    }
    group.finish();
}

fn bench_adaptive_counter_update(c: &mut Criterion) {
    // Skewed dataset: the adaptive rebuild is designed for this shape.
    let sets = sample_sets("com-LJ", 192);
    let k = 10;
    let threads = 4;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    let mut group = c.benchmark_group("adaptive_counter_update");
    group.sample_size(10);

    let mut with_cfg = ExecutionConfig::new(Algorithm::Efficient, threads);
    with_cfg.features.adaptive_counter_update = true;
    let mut without_cfg = with_cfg;
    without_cfg.features.adaptive_counter_update = false;

    group.bench_function("with_adaptive_update", |b| {
        b.iter(|| black_box(select_seeds_efficient(&sets, k, &with_cfg, &pool, None)))
    });
    group.bench_function("without_adaptive_update", |b| {
        b.iter(|| black_box(select_seeds_efficient(&sets, k, &without_cfg, &pool, None)))
    });
    group.finish();
}

criterion_group!(benches, bench_selection_kernels, bench_adaptive_counter_update);
criterion_main!(benches);

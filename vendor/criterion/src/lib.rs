//! Offline subset of `criterion`.
//!
//! Keeps the bench-target surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`) source-compatible, but replaces the
//! statistical runner with a plain timed loop: each benchmark runs
//! `sample_size` iterations after one warm-up and prints the mean iteration
//! time. Good enough to keep `cargo bench` informative offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timing driver passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up iteration outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Names accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into_id(), self.sample_size, f);
        self
    }
}

/// A named group sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_id(), self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let full = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if bencher.iters > 0 && bencher.elapsed > Duration::ZERO {
        let per_iter = bencher.elapsed / bencher.iters as u32;
        println!("bench: {full:<50} {per_iter:>12.2?}/iter ({} iters)", bencher.iters);
    } else {
        println!("bench: {full:<50} (no measurement)");
    }
}

/// Prevent the optimizer from deleting a computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                })
            });
            g.finish();
        }
        // One warm-up + 3 timed iterations.
        assert_eq!(calls, 4);
    }
}

//! Offline subset of `parking_lot`: a [`Mutex`] wrapping `std::sync::Mutex`
//! with parking_lot's panic-free, non-poisoning `lock()` signature.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion with `parking_lot`'s API (no lock poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}

//! Offline subset of the `rayon` API, backed by the `imm-exec`
//! persistent worker pool.
//!
//! * [`scope`] / [`Scope::spawn`] and [`join`] delegate to the
//!   process-global [`imm_exec::Executor`]: long-lived workers fed by
//!   per-worker SPSC queues, with the scope owner helping run unclaimed
//!   tasks. No OS thread is spawned per call.
//! * [`ThreadPoolBuilder::build_global`] configures that global pool once
//!   (thread count otherwise comes from `IMM_THREADS` or the machine
//!   parallelism); [`ThreadPool`] is a thin token recording the requested
//!   parallelism whose `install`/`scope` run on the calling thread and
//!   the global pool respectively.
//! * The [`prelude`] maps the parallel-iterator surface the workspace
//!   uses (`par_iter`, `into_par_iter`, `par_chunks`, `reduce_with`) onto
//!   sequential std iterators — semantics identical, parallelism absent.

pub mod prelude;

use std::fmt;

/// Fork-join scope handing out `spawn`; re-exported from `imm-exec`, so
/// every spawn runs on the persistent global pool and completes before
/// the enclosing [`scope`] returns.
pub use imm_exec::Scope;

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error returned by [`ThreadPoolBuilder::build_global`] when the global
/// pool already exists (and, in real rayon, by `build` failures).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default parallelism
    /// ([`imm_exec::default_threads`]).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Request an explicit worker count (0 = default parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Worker naming hook (accepted and ignored; imm-exec names its own
    /// workers).
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads == 0 {
            imm_exec::default_threads()
        } else {
            self.num_threads
        }
    }

    /// Finish the builder into a pool token. `install` runs inline;
    /// `scope` runs on the process-global persistent pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.resolved_threads() })
    }

    /// Install the process-global pool with this thread count. Fails if
    /// something (an earlier call, or first use) already initialized it.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = self.resolved_threads();
        imm_exec::configure_global(threads).map_err(|_| ThreadPoolBuildError)
    }
}

/// Handle mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The parallelism this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` in the pool's context (here: the calling thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Scoped fork-join; delegates to the process-global persistent pool
    /// (this shim does not keep one OS pool per `ThreadPool` token).
    pub fn scope<'env, OP, R>(&self, op: OP) -> R
    where
        OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        scope(op)
    }
}

/// Fork-join on the process-global persistent pool: `op` may spawn tasks
/// on the scope; all tasks complete before `scope` returns. Mirrors
/// `rayon::scope`.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    imm_exec::global().scope(op)
}

/// Run two closures, potentially in parallel, on the global pool.
/// Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    imm_exec::global().join(oper_a, oper_b)
}

/// Parallelism of the process-global pool (initializing it on first use).
/// Mirrors `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    imm_exec::global().num_threads()
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_reports_requested_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 41 + 1), 42);
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = super::join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn global_pool_has_positive_parallelism() {
        assert!(super::current_num_threads() >= 1);
    }
}

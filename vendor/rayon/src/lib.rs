//! Offline subset of the `rayon` API.
//!
//! * [`scope`] / [`Scope::spawn`] run closures on real scoped OS threads, so
//!   code exercising concurrency (atomic counters, work-stealing queues)
//!   behaves concurrently.
//! * [`ThreadPool`] is a thin token recording the requested parallelism;
//!   `install` runs the closure on the calling thread and `scope` delegates
//!   to scoped OS threads. There is no work-stealing runtime.
//! * The [`prelude`] maps the parallel-iterator surface the workspace uses
//!   (`par_iter`, `into_par_iter`, `par_chunks`, `reduce_with`) onto
//!   sequential std iterators — semantics identical, parallelism absent.

pub mod prelude;

use std::fmt;

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default (machine) parallelism.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Request an explicit worker count (0 = machine parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Worker naming hook (accepted and ignored; no persistent workers).
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Finish the builder.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Handle mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The parallelism this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` in the pool's context (here: the calling thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Scoped fork-join on this pool; see [`scope`].
    pub fn scope<'env, OP, R>(&self, op: OP) -> R
    where
        OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        scope(op)
    }
}

/// Fork-join scope handing out [`Scope::spawn`]. Backed by
/// `std::thread::scope`, so every spawn is a real OS thread that joins when
/// the scope ends.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that runs concurrently with the rest of the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Fork-join: `op` may spawn tasks on the scope; all tasks complete before
/// `scope` returns. Mirrors `rayon::scope`.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_reports_requested_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 41 + 1), 42);
    }
}

//! Parallel-iterator surface mapped onto sequential std iterators.
//!
//! `use rayon::prelude::*` brings these traits into scope; `par_iter`,
//! `into_par_iter` and `par_chunks` simply return the corresponding
//! sequential iterator, and [`ParallelIterator::reduce_with`] (a rayon-only
//! combinator) is provided as an extension on every iterator.

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Produced iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type.
    type Item;
    /// Convert into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    #[inline]
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter` for borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// Produced iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type (a reference).
    type Item: 'data;
    /// Borrowing (sequential) "parallel" iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: 'data,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;
    #[inline]
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Rayon-only combinators, provided on every iterator.
pub trait ParallelIterator: Iterator + Sized {
    /// Fold all items pairwise; `None` on an empty iterator
    /// (rayon's `reduce_with`).
    #[inline]
    fn reduce_with<OP>(self, op: OP) -> Option<Self::Item>
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.reduce(op)
    }

    /// Granularity hint; a no-op here.
    #[inline]
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// `par_chunks` on slices.
pub trait ParallelSlice<T> {
    /// Sequential chunk iterator standing in for rayon's parallel one.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

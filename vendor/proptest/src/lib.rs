//! Offline subset of `proptest`.
//!
//! Runs each property for `ProptestConfig::cases` deterministic
//! pseudo-random cases. Unlike the real crate there is no shrinking — a
//! failing case panics with the generated inputs' `Debug` representation
//! (via the `prop_assert*` macros), which is enough for the workspace's
//! invariant tests.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Like the real crate, the `PROPTEST_CASES` environment variable
        // overrides the source default — CI pins it so property suites stay
        // deterministic in runtime as well as in inputs. The fallback (the
        // real crate uses 256) is 64: the CPU-heavy invariant properties
        // here don't need more to sweep a meaningful input space.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|raw| raw.parse().ok())
            .filter(|&cases| cases > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) SmallRng);

impl TestRng {
    /// Fixed-seed generator: every `cargo test` run sees the same cases.
    pub fn deterministic() -> Self {
        TestRng(SmallRng::seed_from_u64(0x5EED_CA5E_D00D_F00D))
    }
}

/// The prelude mirrored from the real crate: strategy traits/constructors,
/// the macros, and the crate itself under the `prop` alias (for paths like
/// `prop::sample::Index`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...)` block is
/// expanded into a `#[test]` that evaluates the body for many generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` with proptest's name (no shrinking, so it simply panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u64..100, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn flat_map_threads_values(
            (n, v) in (1usize..20).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0usize..n, 1..5))
            }),
        ) {
            prop_assert!(v.iter().all(|&e| e < n));
        }

        #[test]
        fn index_is_always_valid(ix in any::<prop::sample::Index>(), n in 1usize..50) {
            prop_assert!(ix.index(n) < n);
        }
    }
}

//! The `Strategy` trait and primitive strategies.

use crate::TestRng;
use rand::distributions::uniform::SampleUniform;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a dependent strategy from each generated value
    /// (proptest's `prop_flat_map`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Transform generated values (proptest's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let seed = self.source.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen::<bool>()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::Arbitrary;
use crate::TestRng;
use rand::Rng;

/// An index into a collection whose length is only known inside the test
/// body; `index(len)` maps the stored entropy uniformly into `0..len`.
#[derive(Debug, Clone, Copy)]
pub struct Index(usize);

impl Index {
    /// Map into `0..len`.
    ///
    /// # Panics
    /// Panics if `len == 0`, like the real crate.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.0.gen::<usize>())
    }
}

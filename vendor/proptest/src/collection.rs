//! Collection strategies (`vec`, `hash_set`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len =
            if self.size.is_empty() { self.size.start } else { rng.0.gen_range(self.size.clone()) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `HashSet<S::Value>`; duplicates generated while filling
/// simply collapse, so the final size may be below the drawn target (the
/// real crate behaves the same way for narrow element domains).
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target =
            if self.size.is_empty() { self.size.start } else { rng.0.gen_range(self.size.clone()) };
        let mut out = HashSet::with_capacity(target);
        for _ in 0..target {
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// `proptest::collection::hash_set(element, size_range)`.
pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size }
}

//! The self-describing JSON data model shared by the `serde` and
//! `serde_json` shims (`serde_json::Value` re-exports this type).

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed-negative, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Number::PosInt(v)
    }

    /// From a signed integer (normalizes non-negatives to `PosInt`).
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// From a float.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        Number::Float(v)
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// As `f64` (always representable, possibly lossily for huge ints).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(v) => Some(v as f64),
            Number::NegInt(v) => Some(v as f64),
            Number::Float(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    let s = format!("{v}");
                    // JSON floats keep a decimal point (serde_json prints
                    // `1.0`, Rust's Display prints `1`).
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // serde_json serializes non-finite floats as null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` (any numeric value).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Missing keys (or non-objects) index to `Null`, like `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// Literal comparisons used in assertions: `value["k"] == 3`, `== "s"`, etc.
macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_i64() == i64::try_from(*other).ok(),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_comparisons() {
        let v = Value::Object(vec![
            ("k".to_string(), Value::Number(Number::from_u64(3))),
            ("s".to_string(), Value::String("hi".to_string())),
        ]);
        assert_eq!(v["k"], 3);
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Number::from_f64(5.0).to_string(), "5.0");
        assert_eq!(Number::from_f64(0.25).to_string(), "0.25");
        assert_eq!(Number::from_u64(5).to_string(), "5");
    }
}

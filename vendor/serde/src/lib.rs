//! Offline subset of `serde`.
//!
//! Instead of the real crate's visitor-based `Serializer`/`Deserializer`
//! machinery, [`Serialize`] renders directly into a self-describing
//! [`Value`] tree (the same data model `serde_json::Value` exposes), which
//! is all the workspace's JSON logging needs. The derive macros
//! (`#[derive(serde::Serialize, serde::Deserialize)]`) are re-exported from
//! the companion `serde_derive` shim and generate impls of these traits.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Number, Value};

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value-tree representation.
    fn serialize_value(&self) -> Value;
}

/// Marker for types deserializable from the [`Value`] data model.
///
/// Typed deserialization is not exercised by this workspace (only
/// `serde_json::Value` round-trips), so the trait carries no methods; the
/// derive emits an empty impl to keep `#[derive(serde::Deserialize)]`
/// attributes compiling.
pub trait Deserialize: Sized {}

// ---------------------------------------------------------------------------
// Serialize impls for the std types the workspace stores in serialized
// structs: integers, floats, bool, strings, Vec/slice, Option, Duration.
// ---------------------------------------------------------------------------

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::from_u64(v as u64))
                } else {
                    Value::Number(Number::from_i64(v))
                }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for f64 {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for bool {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    #[inline]
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl Serialize for std::time::Duration {
    /// Matches upstream serde's `{secs, nanos}` encoding.
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().serialize_value()),
            ("nanos".to_string(), self.subsec_nanos().serialize_value()),
        ])
    }
}

impl Serialize for Value {
    #[inline]
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

//! Sequence helpers (`SliceRandom`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }
}

//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! Provides exactly the surface the workspace uses: [`rngs::SmallRng`]
//! (a xoshiro256++ generator with splitmix64 seeding), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool`, the
//! [`distributions::Uniform`] distribution, and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic given a seed,
//! which is all the reproduction needs — statistical quality matches the
//! upstream `SmallRng` family (xoshiro) closely enough for Monte-Carlo use.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers/bool).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range` (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub use rngs::SmallRng;

//! Concrete generators. Only `SmallRng` is provided.

use crate::{RngCore, SeedableRng};

/// Small fast non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let f = r.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

//! Distributions: `Standard`, `Uniform`, and the `gen_range` plumbing.

use crate::Rng;

/// Types that can produce samples of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: `[0, 1)` for floats, uniform over the whole
/// domain for integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod uniform {
    //! Uniform sampling over ranges.

    use super::Distribution;
    use crate::Rng;

    /// Types `gen_range` / `Uniform` can sample uniformly.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform draw from `[low, high)` (or `[low, high]` if `inclusive`).
        fn sample_uniform<R: Rng + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                    let span = (high as u128)
                        .wrapping_sub(low as u128)
                        .wrapping_add(inclusive as u128);
                    debug_assert!(span > 0, "empty range in gen_range");
                    // Modulo bias is ≤ span/2^64, negligible for the ranges
                    // this workspace draws from (all far below 2^64).
                    low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                    let span = (high as i128 - low as i128 + inclusive as i128) as u128;
                    debug_assert!(span > 0, "empty range in gen_range");
                    (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
                    let unit: $t = super::Standard.sample(rng);
                    low + (high - low) * unit
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    /// Range arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one value from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "empty range in gen_range");
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "empty range in gen_range");
            T::sample_uniform(rng, low, high, true)
        }
    }

    pub use super::Uniform;
}

/// Pre-built uniform distribution over `[low, high)` or `[low, high]`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform { low, high, inclusive: false }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Uniform { low, high, inclusive: true }
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.low, self.high, self.inclusive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let v = r.gen_range(0usize..=3);
            assert!(v <= 3);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_matches_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        let d = Uniform::new(0.05f32, 1.0f32);
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((0.05..1.0).contains(&v));
        }
    }
}

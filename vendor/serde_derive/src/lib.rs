//! Derive macros for the offline `serde` shim.
//!
//! Supports exactly the item shapes the workspace derives on:
//!
//! * structs with named fields (`struct S { a: T, .. }`) and unit structs;
//! * enums whose variants are unit (`E::A`) or struct-like
//!   (`E::B { x: T }`), serialized with serde's externally-tagged layout.
//!
//! Generics, tuple structs and tuple variants are rejected with a panic at
//! macro-expansion time (none occur in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Struct variant with named fields.
    Named(Vec<String>),
    /// Tuple variant with this many positional fields.
    Tuple(usize),
}

enum Body {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

/// Skip any `#[...]` attributes (including doc comments) at the cursor.
fn skip_attributes(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next(); // '#'
        it.next(); // [...]
    }
}

/// Skip `pub` / `pub(...)` at the cursor.
fn skip_visibility(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        let is_restriction = matches!(
            it.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        );
        if is_restriction {
            it.next();
        }
    }
}

/// Parse `ident : Type` pairs from the token stream of a brace group,
/// returning the field names. Types are skipped by tracking `<`/`>` depth
/// so commas inside generics don't split fields.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde shim derive: expected ':' after field, got {other:?}"),
                }
                let mut depth = 0i32;
                loop {
                    let advance = match it.peek() {
                        None => false,
                        Some(TokenTree::Punct(p)) => {
                            let c = p.as_char();
                            match c {
                                '<' => depth += 1,
                                '>' => {
                                    depth -= 1;
                                    // A lone '>' at depth 0 means we hit the
                                    // '->' of a function type, which this
                                    // walker cannot delimit — fail loudly
                                    // instead of silently dropping fields.
                                    assert!(
                                        depth >= 0,
                                        "serde shim derive: function types in fields are not supported"
                                    );
                                }
                                ',' if depth == 0 => {
                                    it.next(); // consume the separator
                                    break;
                                }
                                _ => {}
                            }
                            true
                        }
                        Some(_) => true,
                    };
                    if !advance {
                        break;
                    }
                    it.next();
                }
            }
            Some(other) => panic!("serde shim derive: unexpected token in fields: {other}"),
        }
    }
    fields
}

/// Count positional fields of a tuple variant by splitting its paren group
/// on top-level commas (tracking `<`/`>` depth for generic types).
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut in_field = false;
    for tt in ts {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    // Field separator; tolerates a trailing comma.
                    if in_field {
                        count += 1;
                        in_field = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        in_field = true;
    }
    if in_field {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let group = match it.peek() {
                    Some(TokenTree::Group(g)) => Some((g.delimiter(), g.stream())),
                    _ => None,
                };
                let shape = match group {
                    Some((Delimiter::Brace, stream)) => {
                        it.next();
                        VariantShape::Named(parse_named_fields(stream))
                    }
                    Some((Delimiter::Parenthesis, stream)) => {
                        it.next();
                        VariantShape::Tuple(count_tuple_fields(stream))
                    }
                    _ => VariantShape::Unit,
                };
                variants.push(Variant { name, shape });
                // Skip to the next comma (covers explicit discriminants).
                for tt in it.by_ref() {
                    if matches!(tt, TokenTree::Punct(ref p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(other) => panic!("serde shim derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let keyword = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // attribute group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                if s == "pub" {
                    let is_restriction = matches!(
                        it.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    );
                    if is_restriction {
                        it.next();
                    }
                }
            }
            Some(_) => {}
            None => panic!("serde shim derive: no struct/enum keyword found"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic items are not supported");
    }
    let body = loop {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if keyword == "struct" {
                    Body::Struct(parse_named_fields(g.stream()))
                } else {
                    Body::Enum(parse_variants(g.stream()))
                };
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                // Unit struct.
                break Body::Struct(Vec::new());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple structs are not supported");
            }
            Some(_) => {}
            None => panic!("serde shim derive: item has no body"),
        }
    };
    Item { name, body }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), serde::Serialize::serialize_value(&self.{f})));"
                ));
            }
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new(); {pushes} serde::Value::Object(fields)"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::String(\"{vname}\".to_string()),"
                    )),
                    VariantShape::Named(fields) => {
                        let pattern = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((\"{f}\".to_string(), serde::Serialize::serialize_value({f})));"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pattern} }} => {{ \
                                 let mut inner: Vec<(String, serde::Value)> = Vec::new(); \
                                 {pushes} \
                                 serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Value::Object(inner))]) \
                             }},"
                        ));
                    }
                    // serde's externally-tagged layout: newtype variants
                    // wrap the single value, longer tuples wrap an array.
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), serde::Serialize::serialize_value(f0))]),"
                    )),
                    VariantShape::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let pattern = bindings.join(", ");
                        let elems: Vec<String> = bindings
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_value({b})"))
                            .collect();
                        let elems = elems.join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname}({pattern}) => serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), serde::Value::Array(vec![{elems}]))]),"
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl serde::Serialize for {name} {{ \
             fn serialize_value(&self) -> serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("serde shim derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    format!("#[automatically_derived] impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde shim derive: generated impl must parse")
}

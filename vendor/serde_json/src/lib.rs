//! Offline subset of `serde_json`.
//!
//! [`Value`] and [`Number`] are re-exported from the `serde` shim (one shared
//! data model instead of the real crates' serializer bridge). Provides the
//! [`json!`] macro, compact/pretty writers, and a recursive-descent JSON
//! parser for [`from_str`].

pub use serde::{Number, Value};

use std::fmt;

/// Error produced by [`from_str`] (and, for signature compatibility, by the
/// infallible writers).
#[derive(Debug)]
pub struct Error {
    message: String,
    /// Byte offset the parser failed at (0 for writer errors).
    pub offset: usize,
}

impl Error {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        Error { message: message.into(), offset }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Convert any [`serde::Serialize`] value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string (serde_json's pretty format).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), Some("  "), 0);
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    let (nl, pad, pad_inner, colon) = match indent {
        Some(unit) => ("\n", unit.repeat(level), unit.repeat(level + 1), ": "),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_inner);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_inner);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, val, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new("trailing characters", pos));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::new("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(Error::new(format!("expected '{kw}'"), *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape", *pos))?;
                        // Surrogate pairs are not needed by this workspace's
                        // logs; map unpaired surrogates to the replacement
                        // character like serde_json's lossy mode.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid utf-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error::new("invalid number", start));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::from_u64(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::from_i64(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::from_f64(v)))
        .map_err(|_| Error::new("invalid number", start))
}

/// Build a [`Value`] with JSON syntax. Keys must be string literals; values
/// may be nested `{...}`/`[...]` literals or arbitrary expressions whose
/// types implement `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object($crate::json_internal!(@object [] $($tt)+))
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: a token muncher that accumulates the
/// finished entries in a bracketed list and emits one `vec![...]` at the end.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // -- object entries ----------------------------------------------------
    (@object [$($pairs:expr,)*]) => { vec![$($pairs,)*] };
    (@object [$($pairs:expr,)*] $key:literal : null , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::Value::Null),] $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : null) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::Value::Null),])
    };
    (@object [$($pairs:expr,)*] $key:literal : { $($map:tt)* } , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::json!({ $($map)* })),] $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : { $($map:tt)* }) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::json!({ $($map)* })),])
    };
    (@object [$($pairs:expr,)*] $key:literal : [ $($arr:tt)* ] , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::json!([ $($arr)* ])),] $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : [ $($arr:tt)* ]) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::json!([ $($arr)* ])),])
    };
    (@object [$($pairs:expr,)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::to_value(&$value)),] $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : $value:expr) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::to_value(&$value)),])
    };
    // -- array elements ----------------------------------------------------
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr,)*] { $($map:tt)* } , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({ $($map)* }),] $($rest)*)
    };
    (@array [$($elems:expr,)*] { $($map:tt)* }) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({ $($map)* }),])
    };
    (@array [$($elems:expr,)*] $value:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$value),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $value:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$value),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_objects() {
        let seeds = vec![3u32, 5, 8];
        let v = json!({
            "k": 3,
            "name": "demo",
            "inner": { "wall": 1.5, "flag": true },
            "seeds": seeds,
        });
        assert_eq!(v["k"], 3);
        assert_eq!(v["name"], "demo");
        assert_eq!(v["inner"]["wall"], 1.5);
        assert_eq!(v["seeds"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({ "a": 1, "b": [1.5, "x", false], "c": { "d": null } });
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(v, back);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = from_str(r#"{"s": "a\nb\"c", "n": -12, "f": 3.25e2}"#).unwrap();
        assert_eq!(v["s"], "a\nb\"c");
        assert_eq!(v["n"].as_i64(), Some(-12));
        assert_eq!(v["f"].as_f64(), Some(325.0));
    }

    #[test]
    fn empty_array_serializes_bare() {
        let empty: [u32; 0] = [];
        assert_eq!(to_string_pretty(&empty[..]).unwrap(), "[]");
    }
}
